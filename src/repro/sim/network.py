"""Network assembly and trial execution.

``build_network`` wires together everything one trial needs — simulator,
channel, mobility models, MACs, nodes, routing protocols and the CBR traffic
manager — from a :class:`~repro.workloads.scenario.Scenario` and a protocol
factory.  ``run_trial`` builds and runs a network and returns the
:class:`~repro.sim.stats.TrialSummary` the experiment harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, TYPE_CHECKING

from .channel import Channel
from .engine import Simulator
from .faults import FaultSchedule
from .mac import Mac
from .mobility import RandomWaypointMobility, StaticMobility
from .node import Node
from .pdes import ShardPlan, ShardedSimulator
from .rng import RngStreams
from .stats import TrialStats, TrialSummary
from .tuning import EngineTuning, FastPaths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..protocols.base import RoutingProtocol
    from ..workloads.scenario import Scenario

__all__ = ["Network", "build_network", "run_trial", "ProtocolFactory"]

NodeId = Hashable

#: Creates a fresh protocol instance for one node.
ProtocolFactory = Callable[[NodeId], "RoutingProtocol"]


@dataclass
class Network:
    """Everything belonging to one trial, ready to run."""

    simulator: Simulator
    channel: Channel
    nodes: Dict[NodeId, Node]
    stats: TrialStats
    scenario: "Scenario"
    traffic: Optional[object] = None

    def run(self) -> TrialSummary:
        """Execute the trial and roll up the statistics."""
        # Under the sharded backend each protocol starts in its node's
        # owner-shard context so its timer chain is queued (and attributed)
        # there; traffic is global work and starts from the coordinator
        # shard.  The serial engine has no such seam and starts directly.
        set_context = getattr(self.simulator, "set_node_context", None)
        for node in self.nodes.values():
            if set_context is not None:
                set_context(node.node_id)
            node.protocol.start()
        if self.traffic is not None:
            if set_context is not None:
                set_context(None)
            self.traffic.start()
        self.simulator.run(until=self.scenario.duration)
        for node in self.nodes.values():
            node.protocol.finalize()
            self.stats.record_mac_drops(node.node_id, node.mac.stats.drops)
            self.stats.record_sequence_number(
                node.node_id, node.protocol.sequence_number_metric()
            )
        return self.stats.summary()


def build_network(
    scenario: "Scenario",
    protocol_factory: ProtocolFactory,
    *,
    with_traffic: bool = True,
    static_positions: bool = False,
    use_spatial_index: bool = True,
    fast_paths: Optional[FastPaths] = None,
    tuning: Optional[EngineTuning] = None,
) -> Network:
    """Assemble a ready-to-run :class:`Network` for one trial.

    ``static_positions`` replaces the random-waypoint model with static nodes
    at the same initial positions; integration tests use it to study protocol
    behaviour without mobility.  ``use_spatial_index=False`` keeps the
    channel on its brute-force O(N) geometry scans — results are identical
    either way (the equivalence tests rely on this); it exists for A/B
    benchmarking and as a fallback.  ``fast_paths`` selects the exact
    hot-path optimizations (:class:`~repro.sim.tuning.FastPaths`; default:
    all on) under the same bit-identical contract.  ``tuning`` selects the
    engine configuration (:class:`~repro.sim.tuning.EngineTuning`: event
    queue and MAC model); when omitted it is resolved from the environment
    via :meth:`EngineTuning.from_env`, which is how CI's ``mac-model-gate``
    job and A/B sweeps flip a whole run without new CLI flags.
    """
    from ..workloads.cbr import CbrTrafficManager  # local import to avoid a cycle

    fp = FastPaths() if fast_paths is None else fast_paths
    engine_tuning = EngineTuning.from_env() if tuning is None else tuning
    if engine_tuning.engine_backend == "processes":
        from .pdes import PdesError

        raise PdesError(
            "engine_backend='processes' launches whole trials via "
            "repro.sim.pdes.run_trial_sharded_processes and cannot back a "
            "single in-process network; dispatch at the trial runner (the "
            "sweep executor does this) or use 'serial'/'sharded' here"
        )
    sharded = engine_tuning.engine_backend == "sharded"
    if sharded:
        plan = ShardPlan.for_scenario(scenario, engine_tuning.resolved_shard_count())
        simulator: Simulator = ShardedSimulator(
            plan, event_queue=engine_tuning.event_queue
        )
    else:
        simulator = Simulator(event_queue=engine_tuning.event_queue)
    streams = RngStreams(scenario.seed)
    # Random-waypoint legs floor the drawn speed at 0.1 m/s, so the channel's
    # drift bound must too; static trials never move nodes at all.
    max_node_speed = 0.0 if static_positions else max(scenario.max_speed, 0.1)
    channel = Channel(
        simulator,
        scenario.phy,
        max_node_speed=max_node_speed,
        use_spatial_index=use_spatial_index,
        use_reception_memo=fp.reception_memo,
        # The busy-until certification cache only serves the poll MAC's
        # carrier-sense queries; the frozen model never reads it, so skip
        # the per-reception seeding work outright.  (Exactness is
        # unaffected either way: nothing in a frozen trial observes it.)
        use_busy_cache=fp.busy_cache and engine_tuning.mac_model == "poll",
        use_airtime_memo=fp.airtime_memo,
        use_object_pool=fp.frame_pool,
        use_grid_prefilter=fp.grid_prefilter,
        use_batch_receptions=fp.batch_receptions,
    )
    stats = TrialStats()
    terrain = scenario.terrain
    mobility_rng = streams.get("mobility")

    nodes: Dict[NodeId, Node] = {}
    initial_positions: Dict[NodeId, tuple] = {}
    for node_id in range(scenario.node_count):
        initial = terrain.random_position(mobility_rng)
        initial_positions[node_id] = initial
        if static_positions:
            mobility = StaticMobility(initial)
        else:
            mobility = RandomWaypointMobility(
                terrain,
                streams.get(f"mobility:{node_id}"),
                min_speed=scenario.min_speed,
                max_speed=scenario.max_speed,
                pause_time=scenario.pause_time,
                initial_position=initial,
                use_segment_table=fp.mobility_segments,
            )
        # The position provider looks the node up lazily, so it is safe to
        # construct the MAC before the Node object exists.
        mac = Mac(
            node_id,
            simulator,
            channel,
            streams.get(f"mac:{node_id}"),
            position_provider=lambda nid=node_id: nodes[nid].position(),
            use_fast_backoff=fp.fast_backoff,
            use_frame_pool=fp.frame_pool,
            mac_model=engine_tuning.mac_model,
        )
        node = Node(node_id, simulator, mobility, mac, stats, rng_streams=streams)
        nodes[node_id] = node
        node.attach_protocol(protocol_factory(node_id))
        if fp.mobility_segments:
            # Let the channel interpolate this node from precompiled
            # segments instead of calling through mac -> node -> mobility
            # on every position-cache miss.
            channel.register_segment_provider(node_id, mobility.segment_for)

    if sharded:
        # Ownership follows the nodes: bind initial shard owners and the
        # live position providers the barrier-time refresh re-derives them
        # from, and let the channel switch delivery context at the seams.
        simulator.bind_nodes(
            initial_positions,
            {
                node_id: (lambda nid=node_id: nodes[nid].position())
                for node_id in nodes
            },
        )
        channel.install_pdes(simulator)

    if scenario.faults:
        # Compile the declarative fault plan into simulator events now, before
        # any traffic is scheduled, so the fault flips hold the earliest
        # sequence numbers and the whole trial remains a pure function of the
        # scenario.  Fault-free scenarios never construct any of this and the
        # hot paths stay on their original instruction sequence.
        schedule = FaultSchedule(scenario.faults)
        schedule.install(simulator, channel, nodes, rng=streams.get("faults"))
        stats.configure_faults(
            schedule.activity_windows(),
            heal_time=schedule.heal_time(),
            burst_window=min(10.0, 0.2 * scenario.duration),
        )

    traffic = None
    if with_traffic and scenario.flow_count > 0:
        traffic = CbrTrafficManager(
            simulator,
            nodes,
            streams.get("traffic"),
            flow_count=scenario.flow_count,
            packets_per_second=scenario.packets_per_second,
            packet_size_bytes=scenario.packet_size_bytes,
            mean_flow_duration=scenario.mean_flow_duration,
            end_time=scenario.duration,
        )

    return Network(
        simulator=simulator,
        channel=channel,
        nodes=nodes,
        stats=stats,
        scenario=scenario,
        traffic=traffic,
    )


def run_trial(
    scenario: "Scenario",
    protocol_factory: ProtocolFactory,
    *,
    static_positions: bool = False,
    use_spatial_index: bool = True,
    fast_paths: Optional[FastPaths] = None,
    tuning: Optional[EngineTuning] = None,
) -> TrialSummary:
    """Build a network for ``scenario``, run it, and return the summary."""
    network = build_network(
        scenario,
        protocol_factory,
        static_positions=static_positions,
        use_spatial_index=use_spatial_index,
        fast_paths=fast_paths,
        tuning=tuning,
    )
    return network.run()
