"""Simulation-wide statistics collection.

The collectors gather exactly the quantities the paper's evaluation reports:

* **delivery ratio** — CBR packets received / CBR packets sent (Fig. 4, Table I)
* **network load** — control packets transmitted / CBR packets received
  (Fig. 5, Table I)
* **data latency** — mean end-to-end lifetime of delivered CBR packets
  (Fig. 6, Table I)
* **MAC drops** — average per-node MAC-layer drops (Fig. 3)
* **average node sequence number** — per-protocol accounting (Fig. 7)

Control transmissions are counted per MAC transmission (so a flooded RREQ
relayed by 50 nodes counts 50 times), matching the conventional definition of
normalised routing overhead the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Hashable, List, Mapping

__all__ = ["TrialStats", "TrialSummary"]

NodeId = Hashable


#: The summary fields every store version has written; newer resilience
#: fields default so cells written before the fault layer existed still load.
_REQUIRED_SUMMARY_FIELDS = frozenset(
    {
        "data_sent",
        "data_delivered",
        "control_transmissions",
        "mean_latency",
        "mac_drops_per_node",
        "average_sequence_number",
        "duplicate_deliveries",
    }
)


@dataclass(frozen=True, slots=True)
class TrialSummary:
    """The headline metrics of one simulation trial."""

    data_sent: int
    data_delivered: int
    control_transmissions: int
    mean_latency: float
    mac_drops_per_node: float
    average_sequence_number: float
    duplicate_deliveries: int
    # Resilience metrics, populated only when the scenario declares faults
    # (repro.sim.faults).  Phase classification is by packet *origination*
    # time: "during" = inside any fault window, "post" = at or after the
    # heal instant.
    data_sent_during_fault: int = 0
    data_delivered_during_fault: int = 0
    data_sent_post_fault: int = 0
    data_delivered_post_fault: int = 0
    #: Seconds from the heal instant to the first delivery of a post-heal
    #: packet; -1.0 when nothing was delivered after healing (or no faults).
    route_recovery_time: float = -1.0
    #: Control transmissions inside the burst window right after healing.
    control_burst_on_heal: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent CBR packets; 0 when nothing was sent."""
        if self.data_sent == 0:
            return 0.0
        return self.data_delivered / self.data_sent

    @property
    def delivery_ratio_during_fault(self) -> float:
        """Delivery ratio of packets originated inside a fault window."""
        if self.data_sent_during_fault == 0:
            return 0.0
        return self.data_delivered_during_fault / self.data_sent_during_fault

    @property
    def delivery_ratio_post_fault(self) -> float:
        """Delivery ratio of packets originated at or after the heal instant."""
        if self.data_sent_post_fault == 0:
            return 0.0
        return self.data_delivered_post_fault / self.data_sent_post_fault

    @property
    def network_load(self) -> float:
        """Control transmissions per delivered CBR packet.

        When nothing is delivered the load is reported per *sent* packet so a
        catastrophically failing protocol still gets a finite, large number.
        """
        if self.data_delivered > 0:
            return self.control_transmissions / self.data_delivered
        if self.data_sent > 0:
            return float(self.control_transmissions) / self.data_sent
        return 0.0

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of the stored fields.

        The derived ``delivery_ratio`` / ``network_load`` properties are
        recomputed on load, so only the seven stored counters are written.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialSummary":
        """Rebuild a summary written by :meth:`to_dict`.

        Unknown keys are ignored so stores written by newer versions (which may
        add informational fields) still load; resilience fields added after
        the original seven default to their fault-free values, so stores
        written before the fault layer existed load unchanged.
        """
        missing = _REQUIRED_SUMMARY_FIELDS - set(data)
        if missing:
            raise ValueError(f"trial summary dict is missing fields: {sorted(missing)}")
        names = {f.name for f in fields(cls)}
        return cls(**{name: data[name] for name in names if name in data})


class TrialStats:
    """Mutable counters filled in while one trial runs.

    ``__slots__`` because the data-path records (one attribute increment per
    originated/delivered packet and per control transmission) are hot enough
    at paper scale for dict-based attribute lookup to show up in profiles.
    """

    __slots__ = (
        "data_sent",
        "data_delivered",
        "duplicate_deliveries",
        "control_transmissions",
        "latencies",
        "mac_drops_by_node",
        "sequence_numbers_by_node",
        "_delivered_uids",
        "_fault_windows",
        "_heal_time",
        "_burst_until",
        "sent_during_fault",
        "delivered_during_fault",
        "sent_post_fault",
        "delivered_post_fault",
        "route_recovery_time",
        "control_burst_on_heal",
    )

    def __init__(self) -> None:
        self.data_sent = 0
        self.data_delivered = 0
        self.duplicate_deliveries = 0
        self.control_transmissions = 0
        self.latencies: List[float] = []
        self.mac_drops_by_node: Dict[NodeId, int] = {}
        self.sequence_numbers_by_node: Dict[NodeId, int] = {}
        self._delivered_uids: set = set()
        # Fault phase bookkeeping; None = no faults, every record_* call
        # skips the classification entirely.
        self._fault_windows = None
        self._heal_time = 0.0
        self._burst_until = 0.0
        self.sent_during_fault = 0
        self.delivered_during_fault = 0
        self.sent_post_fault = 0
        self.delivered_post_fault = 0
        self.route_recovery_time = -1.0
        self.control_burst_on_heal = 0

    # -- fault phases -----------------------------------------------------------------

    def configure_faults(
        self,
        windows,
        *,
        heal_time: float,
        burst_window: float = 10.0,
    ) -> None:
        """Enable resilience accounting for a trial with a fault plan.

        ``windows`` are the merged ``(start, end)`` fault-activity windows;
        ``heal_time`` is when the last one closes.  Control transmissions in
        ``[heal_time, heal_time + burst_window)`` count as the heal burst.
        """
        self._fault_windows = tuple(windows)
        self._heal_time = heal_time
        self._burst_until = heal_time + burst_window

    def _phase(self, t: float) -> int:
        """0 = pre/between faults, 1 = inside a fault window, 2 = post-heal."""
        for start, end in self._fault_windows:
            if start <= t < end:
                return 1
        return 2 if t >= self._heal_time else 0

    # -- data path ------------------------------------------------------------------

    def record_data_sent(self, now: float = 0.0) -> None:
        """A CBR source originated one data packet at time ``now``."""
        self.data_sent += 1
        if self._fault_windows is not None:
            phase = self._phase(now)
            if phase == 1:
                self.sent_during_fault += 1
            elif phase == 2:
                self.sent_post_fault += 1

    def record_data_delivered(
        self, uid: int, latency: float, created_at: float = 0.0
    ) -> None:
        """A data packet reached its destination.

        Deliveries of a uid already seen are counted as duplicates and excluded
        from the delivery ratio and the latency average, as in the paper's
        per-packet accounting.  With faults configured the delivery is also
        bucketed by the packet's origination phase, and the first post-heal
        delivery stamps the route-recovery time.
        """
        if uid in self._delivered_uids:
            self.duplicate_deliveries += 1
            return
        self._delivered_uids.add(uid)
        self.data_delivered += 1
        self.latencies.append(latency)
        if self._fault_windows is not None:
            phase = self._phase(created_at)
            if phase == 1:
                self.delivered_during_fault += 1
            elif phase == 2:
                self.delivered_post_fault += 1
                if self.route_recovery_time < 0.0:
                    self.route_recovery_time = (created_at + latency) - self._heal_time

    # -- control path ------------------------------------------------------------------

    def record_control_transmission(self, now: float = 0.0) -> None:
        """One routing-protocol packet was put on the air (origination or relay)."""
        self.control_transmissions += 1
        if (
            self._fault_windows is not None
            and self._heal_time <= now < self._burst_until
        ):
            self.control_burst_on_heal += 1

    # -- per-node roll-ups -------------------------------------------------------------

    def record_mac_drops(self, node_id: NodeId, drops: int) -> None:
        """Final MAC drop count of one node (queue overflow + retry exhaustion)."""
        self.mac_drops_by_node[node_id] = drops

    def record_sequence_number(self, node_id: NodeId, sequence_number: int) -> None:
        """Final protocol sequence-number growth at one node (Fig. 7)."""
        self.sequence_numbers_by_node[node_id] = sequence_number

    # -- summary -----------------------------------------------------------------------

    def summary(self) -> TrialSummary:
        """Freeze the counters into an immutable summary."""
        mean_latency = (
            sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
        )
        mac_drops = (
            sum(self.mac_drops_by_node.values()) / len(self.mac_drops_by_node)
            if self.mac_drops_by_node
            else 0.0
        )
        average_sequence_number = (
            sum(self.sequence_numbers_by_node.values())
            / len(self.sequence_numbers_by_node)
            if self.sequence_numbers_by_node
            else 0.0
        )
        return TrialSummary(
            data_sent=self.data_sent,
            data_delivered=self.data_delivered,
            control_transmissions=self.control_transmissions,
            mean_latency=mean_latency,
            mac_drops_per_node=mac_drops,
            average_sequence_number=average_sequence_number,
            duplicate_deliveries=self.duplicate_deliveries,
            data_sent_during_fault=self.sent_during_fault,
            data_delivered_during_fault=self.delivered_during_fault,
            data_sent_post_fault=self.sent_post_fault,
            data_delivered_post_fault=self.delivered_post_fault,
            route_recovery_time=self.route_recovery_time,
            control_burst_on_heal=self.control_burst_on_heal,
        )
