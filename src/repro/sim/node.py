"""A simulated wireless node: mobility + MAC + routing protocol + applications.

The node is mostly glue: it owns a mobility model, a MAC instance attached to
the shared channel, and a routing-protocol instance.  Application traffic
(the CBR flow agents in :mod:`repro.workloads.cbr`) calls
:meth:`Node.originate_data`; the routing protocol eventually calls back into
:meth:`Node.deliver_data` at the destination, which records delivery and
latency in the trial statistics.

``Node`` is the simulator's implementation of the
:class:`~repro.runtime.base.Runtime` seam: its ``clock`` is the
:class:`Simulator` itself (which satisfies the ``Clock`` protocol verbatim),
and all time reads on the statistics paths go through ``self.clock.now`` so
the node-side code has no sim-specific time dependency.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, TYPE_CHECKING

from ..runtime.base import Runtime
from .engine import Simulator
from .mac import Mac
from .mobility import MobilityModel
from .packet import Packet, PacketKind
from .stats import TrialStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..protocols.base import RoutingProtocol
    from .rng import RngStreams

__all__ = ["Node"]

NodeId = Hashable


class Node(Runtime):
    """One wireless node participating in a trial."""

    def __init__(
        self,
        node_id: NodeId,
        simulator: Simulator,
        mobility: MobilityModel,
        mac: Mac,
        stats: TrialStats,
        rng_streams: Optional["RngStreams"] = None,
    ) -> None:
        self.node_id = node_id
        self.simulator = simulator
        # The Runtime clock: the simulator object itself (same reference, so
        # protocols scheduling through ``clock`` hit identical engine state).
        self.clock = simulator
        self.mobility = mobility
        self.mac = mac
        self.stats = stats
        self._rng_streams = rng_streams
        self.protocol: Optional["RoutingProtocol"] = None
        # Fault-injection lifecycle flag; while down the node neither
        # originates traffic nor transmits (see go_down/go_up).
        self.is_down = False

    # -- wiring -----------------------------------------------------------------------

    def attach_protocol(self, protocol: "RoutingProtocol") -> None:
        """Install the routing protocol and connect it to the MAC callbacks."""
        self.protocol = protocol
        protocol.attach(self)
        self.mac.set_handlers(protocol.handle_packet, protocol.handle_link_failure)

    def rng(self, name: str = "protocol") -> random.Random:
        """Deterministic per-node stream derived from the trial seed."""
        if self._rng_streams is None:
            return super().rng(name)
        return self._rng_streams.get(f"{name}:{self.node_id!r}")

    # -- fault lifecycle ---------------------------------------------------------------

    def go_down(self) -> None:
        """Fault injection: crash the node.

        The MAC drops its queue and invalidates in-flight continuations, and
        the routing protocol is told to forget its volatile state — the
        semantics of a power loss, not a graceful shutdown.
        """
        if self.is_down:
            return
        self.is_down = True
        self.mac.power_down()
        if self.protocol is not None:
            self.protocol.on_node_down()

    def go_up(self) -> None:
        """Fault injection: reboot the node with empty tables and queues."""
        if not self.is_down:
            return
        self.is_down = False
        self.mac.power_up()
        if self.protocol is not None:
            self.protocol.on_node_up()

    # -- geometry ----------------------------------------------------------------------

    def position(self) -> "tuple[float, float]":
        """Current (x, y) position from the mobility model.

        Uses the mobility model's allocation-free tuple fast path; the
        channel calls this once per node per distinct timestamp.
        """
        return self.mobility.position_at_xy(self.clock.now)

    # -- application data path ---------------------------------------------------------

    def originate_data(
        self, destination: NodeId, size_bytes: int, flow_id: Optional[int] = None
    ) -> None:
        """Create one application data packet and hand it to the routing protocol."""
        if self.protocol is None:
            raise RuntimeError(f"node {self.node_id!r} has no routing protocol")
        if self.is_down:
            # A crashed application offers no load: the packet is neither
            # created nor counted as sent.
            return
        packet = Packet(
            kind=PacketKind.DATA,
            source=self.node_id,
            destination=destination,
            size_bytes=size_bytes,
            created_at=self.clock.now,
            flow_id=flow_id,
        )
        self.stats.record_data_sent(self.clock.now)
        self.protocol.originate_data(packet)

    def deliver_data(self, packet: Packet) -> None:
        """Called by the routing protocol when a data packet reaches this node."""
        latency = self.clock.now - packet.created_at
        self.stats.record_data_delivered(
            packet.uid, latency, created_at=packet.created_at
        )

    # -- transmission helpers used by protocols ----------------------------------------

    def send_unicast(self, packet: Packet, next_hop: NodeId) -> None:
        """Transmit ``packet`` to a specific neighbour (with MAC retries)."""
        if self.is_down:
            return
        if packet.is_control:
            self.stats.record_control_transmission(self.clock.now)
        self.mac.send(packet, next_hop)

    def send_broadcast(self, packet: Packet) -> None:
        """Transmit ``packet`` to every neighbour in range (no retries)."""
        if self.is_down:
            return
        if packet.is_control:
            self.stats.record_control_transmission(self.clock.now)
        self.mac.send(packet, None)
