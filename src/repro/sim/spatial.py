"""Uniform-grid spatial index for range queries over node positions.

The wireless channel repeatedly asks "which nodes are within ``r`` metres of
this point?" — for reception sets on every transmission and (indirectly) for
the oracle protocol's neighbour graph.  A brute-force answer scans every node,
making route-discovery flooding O(N²) per broadcast.  :class:`SpatialGrid`
hashes points into square cells of side ``cell_size`` (the channel uses the
reception range) so a radius query only inspects the cells overlapping the
query disk's bounding square: O(occupied cells + matches) instead of O(N).

The grid is a snapshot: it indexes the positions given to :meth:`build` /
:meth:`insert` and knows nothing about mobility.  Callers that query a grid
built at an earlier time must inflate the radius by the maximum distance any
node can have travelled since the snapshot (see
:meth:`candidates_within`) and re-filter candidates against exact current
positions — this is how :class:`~repro.sim.channel.Channel` amortises the
O(N) rebuild over many queries without changing any query result.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

__all__ = ["SpatialGrid"]

Key = Hashable


class SpatialGrid:
    """A uniform grid over 2-D points supporting disk range queries.

    Cells are addressed by ``(floor(x / cell_size), floor(y / cell_size))``;
    only occupied cells are stored, so memory is O(points) regardless of the
    terrain extent and negative coordinates work naturally.
    """

    __slots__ = ("cell_size", "_cells", "_count")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        # cell -> list of (key, x, y) entries
        self._cells: Dict[Tuple[int, int], List[Tuple[Key, float, float]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- construction ------------------------------------------------------------

    def clear(self) -> None:
        """Remove every indexed point."""
        self._cells.clear()
        self._count = 0

    def insert(self, key: Key, x: float, y: float) -> None:
        """Index one point under ``key``.  Duplicate keys are not detected."""
        cs = self.cell_size
        cell = (int(x // cs), int(y // cs))
        bucket = self._cells.get(cell)
        if bucket is None:
            self._cells[cell] = [(key, x, y)]
        else:
            bucket.append((key, x, y))
        self._count += 1

    def build(self, items: Iterable[Tuple[Key, float, float]]) -> None:
        """Replace the index contents with ``(key, x, y)`` triples."""
        self.clear()
        for key, x, y in items:
            self.insert(key, x, y)

    # -- queries -----------------------------------------------------------------

    def candidate_buckets(
        self, pos: Tuple[float, float], radius: float
    ) -> List[List[Tuple[Key, float, float]]]:
        """The occupied cell buckets overlapping the query disk's bounding
        square — the same candidate superset as :meth:`candidates_within`
        without flattening into one key list.

        The channel's reception-set query iterates candidates once per
        transmission; handing it the internal bucket lists (contract:
        read-only) skips one list build + append per candidate on the
        hottest geometry path.
        """
        if radius < 0:
            return []
        cs = self.cell_size
        x, y = pos
        cx_lo = int((x - radius) // cs)
        cx_hi = int((x + radius) // cs)
        cy_lo = int((y - radius) // cs)
        cy_hi = int((y + radius) // cs)
        cells = self._cells
        if len(cells) <= (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1):
            return [
                bucket
                for (cx, cy), bucket in cells.items()
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi
            ]
        buckets: List[List[Tuple[Key, float, float]]] = []
        cells_get = cells.get
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells_get((cx, cy))
                if bucket is not None:
                    buckets.append(bucket)
        return buckets

    def candidates_within(self, pos: Tuple[float, float], radius: float) -> List[Key]:
        """Keys of every point in a cell overlapping the query disk's bounding
        square — a superset of the points within ``radius`` of ``pos``.

        No distance filtering is done; callers that indexed stale positions
        re-check candidates against fresh coordinates.  The returned order is
        unspecified.
        """
        if radius < 0:
            return []
        cs = self.cell_size
        x, y = pos
        cx_lo = int((x - radius) // cs)
        cx_hi = int((x + radius) // cs)
        cy_lo = int((y - radius) // cs)
        cy_hi = int((y + radius) // cs)
        cells = self._cells
        result: List[Key] = []
        if len(cells) <= (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1):
            # Fewer occupied cells than cells in the query square: scan the
            # occupied ones directly (keeps huge radii from iterating a huge
            # but empty lattice).
            for (cx, cy), bucket in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    for key, _, _ in bucket:
                        result.append(key)
            return result
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket is not None:
                    for key, _, _ in bucket:
                        result.append(key)
        return result

    def neighbors_within(self, pos: Tuple[float, float], radius: float) -> List[Key]:
        """Keys of every indexed point within ``radius`` of ``pos``.

        The boundary is inclusive and the distance test is
        ``sqrt(dx² + dy²) <= radius`` — the exact expression the brute-force
        channel scan uses, so results (including points precisely at the
        boundary) are bit-for-bit identical to an O(N) scan.  The returned
        order is unspecified; callers needing determinism sort by key.
        """
        if radius < 0:
            return []
        cs = self.cell_size
        x, y = pos
        cx_lo = int((x - radius) // cs)
        cx_hi = int((x + radius) // cs)
        cy_lo = int((y - radius) // cs)
        cy_hi = int((y + radius) // cs)
        cells = self._cells
        result: List[Key] = []
        if len(cells) <= (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1):
            buckets = [
                bucket
                for (cx, cy), bucket in cells.items()
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi
            ]
        else:
            buckets = []
            for cx in range(cx_lo, cx_hi + 1):
                for cy in range(cy_lo, cy_hi + 1):
                    bucket = cells.get((cx, cy))
                    if bucket is not None:
                        buckets.append(bucket)
        for bucket in buckets:
            for key, px, py in bucket:
                dx = px - x
                dy = py - y
                if (dx * dx + dy * dy) ** 0.5 <= radius:
                    result.append(key)
        return result
