"""Node mobility models.

The paper models mobility with the random-waypoint pattern: each node picks a
uniform random destination in the terrain, moves toward it at a uniform random
speed in ``[min_speed, max_speed]`` (0–20 m/s in the paper), pauses for the
configured *pause time*, then repeats.  A pause time of 900 s over a 900 s
simulation is effectively a static network; a pause time of 0 s is constant
mobility.

Models are *trace-like*: the full movement schedule is generated lazily but
deterministically from the trial's mobility random stream, so the same
:class:`RandomWaypointMobility` object (or another built from the same seed)
gives identical positions to every protocol in a trial — mirroring the paper's
off-line generated mobility scripts.
"""

from __future__ import annotations

import abc
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Tuple

from .space import Position, Terrain

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomWaypointMobility",
    "Waypoint",
    "Segment",
    "bulk_positions_at",
]

#: One precompiled motion segment: ``(valid_from, depart, arrival, sx, sy,
#: ex, ey)``.  For any ``t`` in ``[valid_from, arrival]`` the node sits at
#: ``(sx, sy)`` until ``depart``, then moves linearly, arriving at
#: ``(ex, ey)`` at ``arrival``.  Evaluating the inlined interpolation
#: expressions of :meth:`RandomWaypointMobility.position_at_xy` over these
#: seven floats reproduces its results bit for bit — which lets the channel
#: interpolate positions without a per-query call chain into the model.
Segment = Tuple[float, float, float, float, float, float, float]


class MobilityModel(abc.ABC):
    """Interface: position of one node as a function of simulation time."""

    @abc.abstractmethod
    def position_at(self, time: float) -> Position:
        """The node's position at simulation time ``time`` (seconds)."""

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        """Fast path: the position as a plain ``(x, y)`` tuple.

        Equivalent to ``position_at`` but lets concrete models skip the
        :class:`Position` allocation — the channel hot path calls this once
        per node per distinct timestamp, which at paper scale is millions of
        lookups per trial.
        """
        point = self.position_at(time)
        return (point.x, point.y)

    def segment_for(self, time: float) -> "Segment | None":
        """The active linear motion segment covering ``time``, if the model
        can describe one (see :data:`Segment`); ``None`` for models that
        cannot.

        A segment hands the caller everything needed to evaluate the node's
        position *locally* for any instant inside the segment's validity
        window — the channel uses this to fill its per-timestamp position
        cache without a Python call chain per interpolation.
        """
        return None


@dataclass(frozen=True, slots=True)
class StaticMobility(MobilityModel):
    """A node that never moves."""

    position: Position

    def position_at(self, time: float) -> Position:
        return self.position

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        position = self.position
        return (position.x, position.y)

    def segment_for(self, time: float) -> "Segment":
        # A static node is one eternal pause: depart never comes.
        position = self.position
        infinity = float("inf")
        return (
            0.0,
            infinity,
            infinity,
            position.x,
            position.y,
            position.x,
            position.y,
        )


@dataclass(frozen=True, slots=True)
class Waypoint:
    """One leg of a random-waypoint trace.

    The node sits at ``start`` from ``start_time`` until ``depart_time``
    (the pause), then moves in a straight line, arriving at ``end`` at
    ``arrival_time``.
    """

    start_time: float
    depart_time: float
    arrival_time: float
    start: Position
    end: Position

    def position_at(self, time: float) -> Position:
        if time <= self.depart_time:
            return self.start
        if time >= self.arrival_time:
            return self.end
        travel = self.arrival_time - self.depart_time
        fraction = (time - self.depart_time) / travel if travel > 0 else 1.0
        return self.start.interpolate(self.end, fraction)


class RandomWaypointMobility(MobilityModel):
    """The random-waypoint model with pause time, as used in the paper.

    The trace is extended on demand (and cached) so querying positions is
    O(log n) in the number of generated legs via binary search over arrival
    times; identical seeds produce identical traces.

    With ``use_segment_table`` (default) each appended leg is also compiled
    into a flat tuple ``(depart, arrival, sx, sy, ex, ey)`` kept in a list
    parallel to ``_arrivals``; ``position_at_xy`` then binary-searches and
    interpolates over plain floats with no :class:`Waypoint` attribute
    walks.  The interpolation expressions are copied verbatim from
    :meth:`Waypoint.position_at`, so the returned floats are bit-identical
    to the slow path's.
    """

    def __init__(
        self,
        terrain: Terrain,
        rng: random.Random,
        *,
        min_speed: float = 0.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
        initial_position: Position | None = None,
        use_segment_table: bool = True,
    ) -> None:
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("min_speed must be within [0, max_speed]")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self._terrain = terrain
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause_time = pause_time
        self._use_segment_table = use_segment_table
        start = initial_position or terrain.random_position(rng)
        self._legs: List[Waypoint] = []
        # Arrival times of self._legs, kept parallel for bisecting.
        self._arrivals: List[float] = []
        # Precompiled segment table: (depart, arrival, sx, sy, ex, ey) per
        # leg, parallel to _arrivals (built only when use_segment_table).
        self._segments: List[Tuple[float, float, float, float, float, float]] = []
        self._append_leg(start_time=0.0, start=start)

    # -- trace construction -------------------------------------------------------

    def _append_leg(self, start_time: float, start: Position) -> None:
        destination = self._terrain.random_position(self._rng)
        # The paper's speeds are uniform in [0, 20] m/s; avoid the degenerate
        # zero speed (a node that never arrives) by flooring at a small value.
        speed = max(self._rng.uniform(self._min_speed, self._max_speed), 0.1)
        depart_time = start_time + self._pause_time
        # A degenerate waypoint (destination equal to the current position)
        # with zero pause would make the leg take no time at all and the trace
        # extension loop would never advance; give every leg a minimal duration.
        travel_time = max(start.distance_to(destination) / speed, 1e-3)
        self._legs.append(
            Waypoint(
                start_time=start_time,
                depart_time=depart_time,
                arrival_time=depart_time + travel_time,
                start=start,
                end=destination,
            )
        )
        self._arrivals.append(depart_time + travel_time)
        if self._use_segment_table:
            self._segments.append(
                (
                    depart_time,
                    depart_time + travel_time,
                    start.x,
                    start.y,
                    destination.x,
                    destination.y,
                )
            )

    def _extend_until(self, time: float) -> None:
        while self._legs[-1].arrival_time < time:
            last = self._legs[-1]
            self._append_leg(start_time=last.arrival_time, start=last.end)

    # -- queries ---------------------------------------------------------------------

    def _leg_at(self, time: float) -> Waypoint:
        if time < 0:
            raise ValueError("time must be non-negative")
        self._extend_until(time)
        # First leg whose arrival time is >= `time` contains `time`.
        index = bisect_left(self._arrivals, time)
        return self._legs[index]

    def position_at(self, time: float) -> Position:
        return self._leg_at(time).position_at(time)

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        if self._use_segment_table:
            # Precompiled segment table: binary search over plain floats,
            # same inlined interpolation expressions as the slow path below.
            if time < 0:
                raise ValueError("time must be non-negative")
            arrivals = self._arrivals
            if arrivals[-1] < time:
                self._extend_until(time)
                arrivals = self._arrivals
            depart, arrival, sx, sy, ex, ey = self._segments[
                bisect_left(arrivals, time)
            ]
            if time <= depart:
                return (sx, sy)
            if time >= arrival:
                return (ex, ey)
            travel = arrival - depart
            fraction = (time - depart) / travel if travel > 0 else 1.0
            fraction = min(max(fraction, 0.0), 1.0)
            return (sx + (ex - sx) * fraction, sy + (ey - sy) * fraction)
        # Inlined Waypoint.position_at + Position.interpolate, expression for
        # expression, so the floats are identical to the slow path — but with
        # no intermediate Position allocated.
        leg = self._leg_at(time)
        if time <= leg.depart_time:
            start = leg.start
            return (start.x, start.y)
        if time >= leg.arrival_time:
            end = leg.end
            return (end.x, end.y)
        travel = leg.arrival_time - leg.depart_time
        fraction = (time - leg.depart_time) / travel if travel > 0 else 1.0
        fraction = min(max(fraction, 0.0), 1.0)
        start = leg.start
        end = leg.end
        return (
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )

    def segment_for(self, time: float) -> "Segment | None":
        """The precompiled segment covering ``time`` (segment table only).

        ``valid_from`` is the previous leg's arrival (0 for the first leg):
        at the exact boundary instant both legs evaluate to the same
        coordinates (one leg's end is the next leg's start), so a caller
        holding either segment computes identical floats.
        """
        if not self._use_segment_table:
            return None
        if time < 0:
            raise ValueError("time must be non-negative")
        arrivals = self._arrivals
        if arrivals[-1] < time:
            self._extend_until(time)
            arrivals = self._arrivals
        index = bisect_left(arrivals, time)
        valid_from = arrivals[index - 1] if index else 0.0
        return (valid_from, *self._segments[index])

    @property
    def pause_time(self) -> float:
        """The configured pause time in seconds."""
        return self._pause_time


def bulk_positions_at(
    models: "dict[object, MobilityModel]", time: float
) -> "dict[object, Tuple[float, float]]":
    """Every model's position at ``time``, in one pass.

    A convenience for tooling and tests that need a full position snapshot
    (each node interpolated once via its allocation-free ``position_at_xy``
    fast path).  The channel itself does *not* use this: it fills its
    per-timestamp cache lazily — cheaper when only a subset of nodes is
    queried at a timestamp — and evaluates registered mobility segments in
    place (see :meth:`MobilityModel.segment_for`).
    """
    return {
        node_id: model.position_at_xy(time) for node_id, model in models.items()
    }
