"""Node mobility models.

The paper models mobility with the random-waypoint pattern: each node picks a
uniform random destination in the terrain, moves toward it at a uniform random
speed in ``[min_speed, max_speed]`` (0–20 m/s in the paper), pauses for the
configured *pause time*, then repeats.  A pause time of 900 s over a 900 s
simulation is effectively a static network; a pause time of 0 s is constant
mobility.

Models are *trace-like*: the full movement schedule is generated lazily but
deterministically from the trial's mobility random stream, so the same
:class:`RandomWaypointMobility` object (or another built from the same seed)
gives identical positions to every protocol in a trial — mirroring the paper's
off-line generated mobility scripts.
"""

from __future__ import annotations

import abc
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Tuple

from .space import Position, Terrain

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomWaypointMobility",
    "Waypoint",
]


class MobilityModel(abc.ABC):
    """Interface: position of one node as a function of simulation time."""

    @abc.abstractmethod
    def position_at(self, time: float) -> Position:
        """The node's position at simulation time ``time`` (seconds)."""

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        """Fast path: the position as a plain ``(x, y)`` tuple.

        Equivalent to ``position_at`` but lets concrete models skip the
        :class:`Position` allocation — the channel hot path calls this once
        per node per distinct timestamp, which at paper scale is millions of
        lookups per trial.
        """
        point = self.position_at(time)
        return (point.x, point.y)


@dataclass(frozen=True, slots=True)
class StaticMobility(MobilityModel):
    """A node that never moves."""

    position: Position

    def position_at(self, time: float) -> Position:
        return self.position

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        position = self.position
        return (position.x, position.y)


@dataclass(frozen=True, slots=True)
class Waypoint:
    """One leg of a random-waypoint trace.

    The node sits at ``start`` from ``start_time`` until ``depart_time``
    (the pause), then moves in a straight line, arriving at ``end`` at
    ``arrival_time``.
    """

    start_time: float
    depart_time: float
    arrival_time: float
    start: Position
    end: Position

    def position_at(self, time: float) -> Position:
        if time <= self.depart_time:
            return self.start
        if time >= self.arrival_time:
            return self.end
        travel = self.arrival_time - self.depart_time
        fraction = (time - self.depart_time) / travel if travel > 0 else 1.0
        return self.start.interpolate(self.end, fraction)


class RandomWaypointMobility(MobilityModel):
    """The random-waypoint model with pause time, as used in the paper.

    The trace is extended on demand (and cached) so querying positions is
    O(log n) in the number of generated legs via binary search over arrival
    times; identical seeds produce identical traces.
    """

    def __init__(
        self,
        terrain: Terrain,
        rng: random.Random,
        *,
        min_speed: float = 0.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
        initial_position: Position | None = None,
    ) -> None:
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("min_speed must be within [0, max_speed]")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self._terrain = terrain
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause_time = pause_time
        start = initial_position or terrain.random_position(rng)
        self._legs: List[Waypoint] = []
        # Arrival times of self._legs, kept parallel for bisecting.
        self._arrivals: List[float] = []
        self._append_leg(start_time=0.0, start=start)

    # -- trace construction -------------------------------------------------------

    def _append_leg(self, start_time: float, start: Position) -> None:
        destination = self._terrain.random_position(self._rng)
        # The paper's speeds are uniform in [0, 20] m/s; avoid the degenerate
        # zero speed (a node that never arrives) by flooring at a small value.
        speed = max(self._rng.uniform(self._min_speed, self._max_speed), 0.1)
        depart_time = start_time + self._pause_time
        # A degenerate waypoint (destination equal to the current position)
        # with zero pause would make the leg take no time at all and the trace
        # extension loop would never advance; give every leg a minimal duration.
        travel_time = max(start.distance_to(destination) / speed, 1e-3)
        self._legs.append(
            Waypoint(
                start_time=start_time,
                depart_time=depart_time,
                arrival_time=depart_time + travel_time,
                start=start,
                end=destination,
            )
        )
        self._arrivals.append(depart_time + travel_time)

    def _extend_until(self, time: float) -> None:
        while self._legs[-1].arrival_time < time:
            last = self._legs[-1]
            self._append_leg(start_time=last.arrival_time, start=last.end)

    # -- queries ---------------------------------------------------------------------

    def _leg_at(self, time: float) -> Waypoint:
        if time < 0:
            raise ValueError("time must be non-negative")
        self._extend_until(time)
        # First leg whose arrival time is >= `time` contains `time`.
        index = bisect_left(self._arrivals, time)
        return self._legs[index]

    def position_at(self, time: float) -> Position:
        return self._leg_at(time).position_at(time)

    def position_at_xy(self, time: float) -> Tuple[float, float]:
        # Inlined Waypoint.position_at + Position.interpolate, expression for
        # expression, so the floats are identical to the slow path — but with
        # no intermediate Position allocated.
        leg = self._leg_at(time)
        if time <= leg.depart_time:
            start = leg.start
            return (start.x, start.y)
        if time >= leg.arrival_time:
            end = leg.end
            return (end.x, end.y)
        travel = leg.arrival_time - leg.depart_time
        fraction = (time - leg.depart_time) / travel if travel > 0 else 1.0
        fraction = min(max(fraction, 0.0), 1.0)
        start = leg.start
        end = leg.end
        return (
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )

    @property
    def pause_time(self) -> float:
        """The configured pause time in seconds."""
        return self._pause_time
