"""DSR — Dynamic Source Routing (baseline).

DSR (Johnson, Maltz, Hu & Jetcheva) builds complete hop-by-hop routes at the
source: a flooded RREQ records the path it traverses, the destination (or a
node with a cached route) returns that path in a RREP, and every data packet
carries its full source route.  Packet paths are inherently loop-free.  The
repository implements the features the paper's evaluation exercises: route
caching at every node that overhears a path, *salvaging* (re-routing a packet
from a relay's own cache when its next hop breaks), and route-error
propagation removing broken links from caches.

Under the paper's high-load scenario DSR's aggressive caching backfires — stale
cached routes cause repeated MAC-layer failures (Fig. 3) and its delivery
ratio collapses with mobility (Fig. 4), which this simplified implementation
also exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import PacketBuffer, ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES, DiscoveryController

__all__ = ["DsrConfig", "DsrProtocol", "DsrRreq", "DsrRrep", "DsrRerr", "SourceRoute"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class SourceRoute:
    """The source route carried by a data packet: the full node sequence."""

    route: Tuple[NodeId, ...]
    index: int = 0

    @property
    def next_hop(self) -> Optional[NodeId]:
        """The next node after the current position, or None at the end."""
        if self.index + 1 < len(self.route):
            return self.route[self.index + 1]
        return None

    def advanced(self) -> "SourceRoute":
        """The header as seen by the next hop."""
        return replace(self, index=self.index + 1)


@dataclass(frozen=True, slots=True)
class DsrRreq:
    """Route request accumulating the traversed path."""

    source: NodeId
    rreq_id: int
    destination: NodeId
    path: Tuple[NodeId, ...]
    ttl: int = 64

    def extended(self, node: NodeId) -> "DsrRreq":
        return replace(self, path=self.path + (node,), ttl=self.ttl - 1)


@dataclass(frozen=True, slots=True)
class DsrRrep:
    """Route reply carrying the complete source-to-destination path."""

    source: NodeId
    destination: NodeId
    route: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class DsrRerr:
    """Route error naming the broken link."""

    from_node: NodeId
    to_node: NodeId


@dataclass(frozen=True, slots=True)
class DsrConfig(ProtocolConfig):
    """DSR cache sizes and timers."""

    discovery_timeout: float = 1.0
    max_discovery_attempts: int = 3
    buffer_size: int = 64
    rreq_ttl: int = 64
    max_cached_routes_per_destination: int = 4
    max_salvage_count: int = 2


class DsrProtocol(RoutingProtocol):
    """One node's DSR instance."""

    name = "DSR"

    def __init__(self, config: Optional[DsrConfig] = None) -> None:
        super().__init__()
        self.config = config or DsrConfig()
        self.route_cache: Dict[NodeId, List[Tuple[NodeId, ...]]] = {}
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        self.seen_rreqs: Set[Tuple[NodeId, int]] = set()
        self.discovery: Optional[DiscoveryController] = None
        self.data_drops = 0
        self.salvage_counts: Dict[int, int] = {}

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, node) -> None:
        super().attach(node)
        self.discovery = DiscoveryController(
            node.clock,
            send_request=self._send_rreq,
            give_up=self._discovery_failed,
            timeout=self.config.discovery_timeout,
            max_attempts=self.config.max_discovery_attempts,
        )

    def on_node_down(self) -> None:
        """Crash: the route cache, dedup state and buffers are all volatile
        (DSR keeps no durable per-node counters at all)."""
        self.route_cache.clear()
        self.seen_rreqs.clear()
        self.salvage_counts.clear()
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        if self.discovery is not None:
            self.discovery.abandon_all()

    # -- route cache -------------------------------------------------------------------

    def cache_route(self, route: Tuple[NodeId, ...]) -> None:
        """Remember every sub-path of ``route`` that starts at this node.

        DSR's cache is effectively a link cache: a learned path provides a
        route to every node that appears after us on it.
        """
        if len(route) < 2:
            return
        for start in range(len(route) - 1):
            if route[start] != self.node_id:
                continue
            for end in range(start + 1, len(route)):
                sub_route = route[start : end + 1]
                destination = sub_route[-1]
                cached = self.route_cache.setdefault(destination, [])
                if sub_route in cached:
                    continue
                cached.append(sub_route)
                cached.sort(key=len)
                del cached[self.config.max_cached_routes_per_destination :]

    def best_route(self, destination: NodeId) -> Optional[Tuple[NodeId, ...]]:
        """The shortest cached route to ``destination``, if any."""
        cached = self.route_cache.get(destination)
        return cached[0] if cached else None

    def remove_link(self, from_node: NodeId, to_node: NodeId) -> None:
        """Purge every cached route using the broken link."""
        for destination in list(self.route_cache):
            remaining = [
                route
                for route in self.route_cache[destination]
                if not self._route_uses_link(route, from_node, to_node)
            ]
            if remaining:
                self.route_cache[destination] = remaining
            else:
                del self.route_cache[destination]

    @staticmethod
    def _route_uses_link(
        route: Tuple[NodeId, ...], from_node: NodeId, to_node: NodeId
    ) -> bool:
        return any(
            route[i] == from_node and route[i + 1] == to_node
            for i in range(len(route) - 1)
        )

    # -- application data --------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        route = self.best_route(packet.destination)
        if route is not None:
            self._send_along_route(packet, route)
            return
        if not self.buffer.push(packet):
            self.data_drops += 1
        self.discovery.begin(packet.destination)

    def _send_along_route(self, packet: Packet, route: Tuple[NodeId, ...]) -> None:
        header = SourceRoute(route=route, index=0)
        packet.payload = header
        next_hop = header.next_hop
        if next_hop is None:
            self.data_drops += 1
            return
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, DsrRreq):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, DsrRrep):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, DsrRerr):
            self._handle_rerr(payload, from_node)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if packet.destination == self.node_id:
            self.node.deliver_data(packet)
            return
        header = packet.payload
        if not isinstance(header, SourceRoute):
            self.data_drops += 1
            return
        forwarded = packet.copy_for_forwarding()
        advanced = header.advanced()
        forwarded.payload = advanced
        next_hop = advanced.next_hop
        if next_hop is None:
            self.data_drops += 1
            return
        self.node.send_unicast(forwarded, next_hop)

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        self.remove_link(self.node_id, next_hop)
        if not packet.is_data:
            return
        # Salvaging: replace the failed route with one from our own cache.
        salvaged = self.salvage_counts.get(packet.uid, 0)
        route = self.best_route(packet.destination)
        if route is not None and salvaged < self.config.max_salvage_count:
            self.salvage_counts[packet.uid] = salvaged + 1
            self._send_along_route(packet, route)
        elif packet.source == self.node_id:
            if not self.buffer.push(packet):
                self.data_drops += 1
            self.discovery.begin(packet.destination)
        else:
            self.data_drops += 1
        # Tell the network about the broken link so caches converge.
        rerr = DsrRerr(from_node=self.node_id, to_node=next_hop)
        self.node.send_broadcast(
            self.make_control_packet(packet.source, rerr, CONTROL_SIZES["rerr"])
        )

    # -- route discovery ---------------------------------------------------------------

    def _send_rreq(self, destination: NodeId, rreq_id: int, attempt: int) -> None:
        rreq = DsrRreq(
            source=self.node_id,
            rreq_id=rreq_id,
            destination=destination,
            path=(self.node_id,),
            ttl=self.config.rreq_ttl,
        )
        self.seen_rreqs.add((self.node_id, rreq_id))
        self.node.send_broadcast(
            self.make_control_packet(destination, rreq, CONTROL_SIZES["rreq"])
        )

    def _discovery_failed(self, destination: NodeId) -> None:
        self.data_drops += self.buffer.drop_all(destination)

    def _handle_rreq(self, rreq: DsrRreq, from_node: NodeId) -> None:
        key = (rreq.source, rreq.rreq_id)
        if key in self.seen_rreqs or rreq.source == self.node_id or rreq.ttl <= 0:
            return
        if self.node_id in rreq.path:
            return
        self.seen_rreqs.add(key)
        # Overhearing the accumulated path populates the route cache.
        self.cache_route(tuple(reversed(rreq.path + (self.node_id,))))

        extended = rreq.extended(self.node_id)
        if rreq.destination == self.node_id:
            rrep = DsrRrep(
                source=rreq.source,
                destination=self.node_id,
                route=extended.path,
            )
            self._send_rrep(rrep, from_node)
            return
        cached = self.best_route(rreq.destination)
        if cached is not None:
            # Reply from cache: splice the accumulated path with the cached tail.
            spliced = extended.path + cached[1:]
            if len(set(spliced)) == len(spliced):  # avoid splicing a loop
                rrep = DsrRrep(
                    source=rreq.source, destination=rreq.destination, route=spliced
                )
                self._send_rrep(rrep, from_node)
                return
        if extended.ttl <= 0:
            return
        self.node.send_broadcast(
            self.make_control_packet(rreq.destination, extended, CONTROL_SIZES["rreq"])
        )

    def _send_rrep(self, rrep: DsrRrep, next_hop: NodeId) -> None:
        self.node.send_unicast(
            self.make_control_packet(rrep.source, rrep, CONTROL_SIZES["rrep"]),
            next_hop,
        )

    def _handle_rrep(self, rrep: DsrRrep, from_node: NodeId) -> None:
        self.cache_route(rrep.route)
        if rrep.source == self.node_id:
            self.discovery.complete(rrep.destination)
            route = self.best_route(rrep.destination)
            if route is not None:
                for packet in self.buffer.pop_all(rrep.destination):
                    self._send_along_route(packet, route)
            return
        # Forward the RREP backwards along the recorded route.
        try:
            position = rrep.route.index(self.node_id)
        except ValueError:
            return
        if position == 0:
            return
        self.node.send_unicast(
            self.make_control_packet(rrep.source, rrep, CONTROL_SIZES["rrep"]),
            rrep.route[position - 1],
        )

    def _handle_rerr(self, rerr: DsrRerr, from_node: NodeId) -> None:
        self.remove_link(rerr.from_node, rerr.to_node)

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """DSR has no sequence numbers (not plotted in Fig. 7)."""
        return 0
