"""LSR — an OSPF-style link-state routing protocol.

Not one of the paper's five protocols: LSR extends the comparison matrix
with the classic link-state design the SNIPPETS exemplars implement against
real transports, and it is the first protocol written for *both* runtimes
from day one — the deterministic simulator and the live asyncio daemons
(:mod:`repro.runtime.live`).

Where OLSR (the paper's proactive baseline) floods soft-state TC messages
and accepts any refresh with a non-stale sequence number, LSR follows the
OSPF discipline:

* each node originates a **sequence-numbered LSA** describing its full link
  set; an LSA replaces the stored one only when *strictly newer*
  (``seq >``), so duplicated floods are inert by construction;
* LSAs age out of the **LSDB** (max-age) and are re-originated periodically
  (refresh) **and on triggered events** — a neighbour appearing or dying
  re-floods immediately, rate-limited by ``lsa_min_interval``;
* SPF uses only **bidirectional links**: an edge enters the shortest-path
  graph when *both* endpoints advertise it, OSPF's two-way check, which
  keeps half-dead links (one side still holding a stale adjacency) out of
  the forwarding plane;
* flooding carries a TTL and every node dedups on ``(origin, seq)``.

The dirty-flag + validity-horizon SPF scheduling is transplanted verbatim
from OLSR's incremental-routes machinery (PR 5): the periodic route tick
skips the SPF while nothing was added, revived or replaced and no entry
that fed the last computation can have expired yet.

Determinism across runtimes: the SPF iterates neighbours in **sorted
order**, so two nodes with the same LSDB compute the same table regardless
of dict insertion order — the property the sim-vs-live parity tests
(``tests/runtime/test_parity.py``) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES, PeriodicTimer

__all__ = ["LsrConfig", "LsrProtocol", "LsrHello", "LsrLsa", "LsdbEntry"]

NodeId = Hashable

_NEVER = float("inf")


def _sorted_ids(ids: Iterable[NodeId]) -> List[NodeId]:
    """Deterministic ordering for arbitrary hashable node ids."""
    try:
        return sorted(ids)  # type: ignore[type-var]
    except TypeError:
        return sorted(ids, key=repr)


@dataclass(frozen=True, slots=True)
class LsrHello:
    """One-hop broadcast for neighbour sensing (never forwarded)."""

    origin: NodeId


@dataclass(frozen=True, slots=True)
class LsrLsa:
    """A link-state advertisement: the origin's full current link set."""

    origin: NodeId
    sequence_number: int
    links: Tuple[NodeId, ...]
    ttl: int = 16


@dataclass
class LsdbEntry:
    """One origin's row in the link-state database."""

    links: Set[NodeId]
    sequence_number: int
    expires_at: float


@dataclass(frozen=True, slots=True)
class LsrConfig(ProtocolConfig):
    """LSR intervals, holding times and flood control.

    ``incremental_routes`` gates the dirty-flag/validity-horizon SPF
    scheduling (exact — a skipped SPF would have rebuilt the identical
    table); ``lsa_min_interval`` rate-limits triggered re-originations so
    a flapping neighbour cannot melt the network with floods.
    """

    hello_interval: float = 2.0
    neighbor_hold_time: float = 6.0
    lsa_interval: float = 5.0
    lsa_max_age: float = 15.0
    lsa_min_interval: float = 0.5
    lsa_ttl: int = 16
    route_recompute_interval: float = 1.0
    incremental_routes: bool = True
    hop_limit: int = 32


class LsrProtocol(RoutingProtocol):
    """One node's LSR instance (both runtimes)."""

    name = "LSR"

    def __init__(self, config: Optional[LsrConfig] = None) -> None:
        super().__init__()
        self.config = config or LsrConfig()
        #: neighbour -> expiry time (hello soft state)
        self.neighbors: Dict[NodeId, float] = {}
        #: origin -> LSDB row for every *other* node heard from
        self.lsdb: Dict[NodeId, LsdbEntry] = {}
        self.routing_table: Dict[NodeId, NodeId] = {}
        #: own LSA sequence number; survives reboots (non-volatile in OSPF).
        self.lsa_sequence_number = 0
        self.seen_lsas: Set[Tuple[NodeId, int]] = set()
        self.data_drops = 0
        #: flood-control counters the live runtime's soak gate reads.
        self.ttl_expired_drops = 0
        self.duplicate_lsa_drops = 0
        self._last_origination = -_NEVER
        self._origination_pending = False
        # Dirty-flag + validity-horizon SPF bookkeeping (OLSR PR 5 design).
        self._routes_dirty = True
        self._routes_valid_until = -_NEVER
        self._routes_computed_at = -_NEVER

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        offset = (hash(self.node_id) % 1000) / 1000.0
        config = self.config
        PeriodicTimer(
            self.clock, config.hello_interval, self._emit_hello
        ).start(first_delay=offset * config.hello_interval)
        PeriodicTimer(self.clock, config.lsa_interval, self._refresh_lsa).start(
            first_delay=offset * config.lsa_interval
        )
        PeriodicTimer(
            self.clock, config.route_recompute_interval, self._route_maintenance
        ).start()

    def on_node_down(self) -> None:
        """Crash: the LSDB and adjacency state are volatile, the seq is not."""
        self.neighbors.clear()
        self.lsdb.clear()
        self.routing_table.clear()
        self.seen_lsas.clear()
        self._last_origination = -_NEVER
        self._origination_pending = False
        self._routes_dirty = True
        self._routes_valid_until = -_NEVER
        self._routes_computed_at = -_NEVER

    # -- periodic emissions ------------------------------------------------------------

    def _emit_hello(self, now: float) -> None:
        self.node.send_broadcast(
            self.make_control_packet(
                self.node_id, LsrHello(origin=self.node_id), CONTROL_SIZES["hello"]
            )
        )

    def _refresh_lsa(self, now: float) -> None:
        self._originate_lsa(now)

    def _originate_lsa(self, now: float) -> None:
        """Flood a fresh LSA, honouring the min-origination interval.

        A triggered origination that arrives inside the rate limit is
        *deferred*, not lost: the pending flag makes the next maintenance
        tick retry, so topology changes are advertised at most
        ``lsa_min_interval + route_recompute_interval`` late.
        """
        if now - self._last_origination < self.config.lsa_min_interval:
            self._origination_pending = True
            return
        self._last_origination = now
        self._origination_pending = False
        self.lsa_sequence_number += 1
        lsa = LsrLsa(
            origin=self.node_id,
            sequence_number=self.lsa_sequence_number,
            links=tuple(_sorted_ids(self._live_neighbors())),
            ttl=self.config.lsa_ttl,
        )
        self.seen_lsas.add((self.node_id, self.lsa_sequence_number))
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, lsa, CONTROL_SIZES["tc"])
        )

    def _route_maintenance(self, now: float) -> None:
        if self._origination_pending:
            self._originate_lsa(now)
        if not self.config.incremental_routes or self._routes_dirty:
            self._recompute_routes()
            return
        if now < self._routes_valid_until:
            return
        # Revalidate the horizon: only an entry that died since the last
        # SPF invalidates the table (expiry inside (computed_at, now]).
        computed_at = self._routes_computed_at
        horizon = _NEVER
        for expiry in self.neighbors.values():
            if expiry <= now:
                if expiry > computed_at:
                    self._recompute_routes()
                    return
            elif expiry < horizon:
                horizon = expiry
        for entry in self.lsdb.values():
            expiry = entry.expires_at
            if expiry <= now:
                if expiry > computed_at:
                    self._recompute_routes()
                    return
            elif expiry < horizon:
                horizon = expiry
        self._routes_valid_until = horizon

    # -- link-state database -----------------------------------------------------------

    def _live_neighbors(self) -> Set[NodeId]:
        now = self.clock.now
        return {n for n, expiry in self.neighbors.items() if expiry > now}

    def _live_lsdb(self) -> Dict[NodeId, Set[NodeId]]:
        """origin -> advertised link set, max-aged entries excluded."""
        now = self.clock.now
        return {
            origin: entry.links
            for origin, entry in self.lsdb.items()
            if entry.expires_at > now
        }

    # -- SPF ---------------------------------------------------------------------------

    def _recompute_routes(self) -> None:
        """Dijkstra over bidirectional links, in deterministic sorted order.

        Hop-count metric makes Dijkstra a BFS; the two-way check means an
        edge (a, b) exists only when a's link set names b *and* b's names a
        (this node's own adjacency counts as its advertisement).  All
        frontier and neighbour iteration is sorted so the resulting table
        depends only on the LSDB contents, never on arrival order — the
        cross-runtime parity property.
        """
        now = self.clock.now
        live_neighbors = self._live_neighbors()
        advertised: Dict[NodeId, Set[NodeId]] = {
            origin: set(links) for origin, links in self._live_lsdb().items()
        }
        advertised[self.node_id] = set(live_neighbors)

        def linked(a: NodeId, b: NodeId) -> bool:
            links_a = advertised.get(a)
            links_b = advertised.get(b)
            return (
                links_a is not None
                and links_b is not None
                and b in links_a
                and a in links_b
            )

        table: Dict[NodeId, NodeId] = {}
        frontier = [n for n in _sorted_ids(live_neighbors) if linked(self.node_id, n)]
        for neighbor in frontier:
            table[neighbor] = neighbor
        visited = set(frontier)
        visited.add(self.node_id)
        while frontier:
            next_frontier: List[NodeId] = []
            for node in frontier:
                first_hop = table[node]
                for neighbor in _sorted_ids(advertised.get(node, ())):
                    if neighbor in visited or not linked(node, neighbor):
                        continue
                    visited.add(neighbor)
                    table[neighbor] = first_hop
                    next_frontier.append(neighbor)
            frontier = next_frontier
        self.routing_table = table
        if self.config.incremental_routes:
            valid_until = _NEVER
            for expiry in self.neighbors.values():
                if now < expiry < valid_until:
                    valid_until = expiry
            for entry in self.lsdb.values():
                if now < entry.expires_at < valid_until:
                    valid_until = entry.expires_at
            self._routes_valid_until = valid_until
            self._routes_computed_at = now
            self._routes_dirty = False

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """The current first hop toward ``destination``, if reachable."""
        return self.routing_table.get(destination)

    # -- application data --------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        if next_hop is None:
            self.data_drops += 1
            return
        self.node.send_unicast(packet, next_hop)

    # -- packet handling ---------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, LsrHello):
            self._handle_hello(payload)
        elif isinstance(payload, LsrLsa):
            self._handle_lsa(payload)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        # Split horizon + hop limit: link-state tables can transiently loop.
        if (
            next_hop is None
            or next_hop == from_node
            or packet.hops > self.config.hop_limit
        ):
            self.data_drops += 1
            return
        self.node.send_unicast(packet.copy_for_forwarding(), next_hop)

    def _handle_hello(self, hello: LsrHello) -> None:
        now = self.clock.now
        previous = self.neighbors.get(hello.origin)
        came_up = previous is None or previous <= now
        self.neighbors[hello.origin] = now + self.config.neighbor_hold_time
        if came_up:
            self._routes_dirty = True
            # Triggered origination: advertise the new adjacency now rather
            # than waiting out the refresh interval.
            self._originate_lsa(now)

    def _handle_lsa(self, lsa: LsrLsa) -> None:
        if lsa.origin == self.node_id:
            return
        key = (lsa.origin, lsa.sequence_number)
        if key in self.seen_lsas:
            self.duplicate_lsa_drops += 1
            return
        self.seen_lsas.add(key)
        if lsa.ttl <= 0:
            self.ttl_expired_drops += 1
            return
        now = self.clock.now
        existing = self.lsdb.get(lsa.origin)
        # OSPF discipline: install only strictly newer LSAs — unless the
        # stored one already max-aged out, in which case any live LSA
        # (e.g. from a rebooted origin) revives the row.
        if (
            existing is None
            or lsa.sequence_number > existing.sequence_number
            or existing.expires_at <= now
        ):
            links = set(lsa.links)
            if (
                existing is None
                or existing.expires_at <= now
                or links != existing.links
            ):
                self._routes_dirty = True
            self.lsdb[lsa.origin] = LsdbEntry(
                links=links,
                sequence_number=lsa.sequence_number,
                expires_at=now + self.config.lsa_max_age,
            )
        # Flood on regardless of install: neighbours we relay for may not
        # have seen this (origin, seq) yet even when we already had it.
        relayed = LsrLsa(
            origin=lsa.origin,
            sequence_number=lsa.sequence_number,
            links=lsa.links,
            ttl=lsa.ttl - 1,
        )
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, relayed, CONTROL_SIZES["tc"])
        )

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        now = self.clock.now
        if self.neighbors.pop(next_hop, None) is not None:
            self._routes_dirty = True
            # The adjacency died: advertise the loss immediately.
            self._originate_lsa(now)
        self._recompute_routes()
        if packet.is_data:
            alternative = self.next_hop(packet.destination)
            if alternative is not None and alternative != next_hop:
                self.node.send_unicast(packet, alternative)
            else:
                self.data_drops += 1

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """LSR is not part of Fig. 7's sequence-number comparison."""
        return 0
