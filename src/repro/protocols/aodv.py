"""AODV — Ad hoc On-demand Distance Vector routing (baseline).

AODV (Perkins, Belding-Royer & Das) prevents loops with per-destination
*sequence numbers* and hop counts: a node only accepts a route that is fresher
(higher destination sequence number) or equally fresh and shorter.  The cost of
this design — the point the paper's Fig. 7 makes — is that nodes must keep
increasing sequence numbers: the source increments its own sequence number for
every route discovery, and a node that loses a route increments the stored
destination sequence number before advertising the loss, so over time sequence
numbers climb quickly.

The implementation follows RFC 3561 in structure (RREQ/RREP/RERR, reverse-path
state, expanding sequence numbers) with simplifications that do not affect the
reproduced metrics: no gratuitous RREPs, no local repair, hop-count metric
only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import PacketBuffer, ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES, DiscoveryController, PeriodicTimer

__all__ = ["AodvConfig", "AodvProtocol", "AodvRreq", "AodvRrep", "AodvRerr"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class AodvRreq:
    """Route request flooded through the network."""

    source: NodeId
    source_sequence_number: int
    rreq_id: int
    destination: NodeId
    destination_sequence_number: int
    destination_sequence_unknown: bool
    hop_count: int = 0
    ttl: int = 64

    def relayed(self) -> "AodvRreq":
        return replace(self, hop_count=self.hop_count + 1, ttl=self.ttl - 1)


@dataclass(frozen=True, slots=True)
class AodvRrep:
    """Route reply unicast along the reverse path."""

    source: NodeId
    destination: NodeId
    destination_sequence_number: int
    hop_count: int
    lifetime: float = 10.0

    def relayed(self) -> "AodvRrep":
        return replace(self, hop_count=self.hop_count + 1)


@dataclass(frozen=True, slots=True)
class AodvRerr:
    """Route error listing unreachable destinations and their sequence numbers."""

    unreachable: Tuple[Tuple[NodeId, int], ...]


@dataclass
class AodvRouteEntry:
    """One destination's forwarding state."""

    destination: NodeId
    sequence_number: int = 0
    sequence_valid: bool = False
    hop_count: int = 0
    next_hop: Optional[NodeId] = None
    expires_at: float = 0.0
    valid: bool = False


@dataclass(frozen=True, slots=True)
class AodvConfig(ProtocolConfig):
    """AODV timers and limits."""

    route_lifetime: float = 10.0
    discovery_timeout: float = 1.0
    max_discovery_attempts: int = 3
    buffer_size: int = 64
    rreq_ttl: int = 64
    maintenance_interval: float = 1.0


class AodvProtocol(RoutingProtocol):
    """One node's AODV instance."""

    name = "AODV"

    def __init__(self, config: Optional[AodvConfig] = None) -> None:
        super().__init__()
        self.config = config or AodvConfig()
        self.routes: Dict[NodeId, AodvRouteEntry] = {}
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        self.own_sequence_number = 0
        self.seen_rreqs: Set[Tuple[NodeId, int]] = set()
        self.discovery: Optional[DiscoveryController] = None
        self.data_drops = 0

    # -- lifecycle --------------------------------------------------------------

    def attach(self, node) -> None:
        super().attach(node)
        self.discovery = DiscoveryController(
            node.clock,
            send_request=self._send_rreq,
            give_up=self._discovery_failed,
            timeout=self.config.discovery_timeout,
            max_attempts=self.config.max_discovery_attempts,
        )

    def start(self) -> None:
        PeriodicTimer(
            self.clock, self.config.maintenance_interval, self._maintenance
        ).start()

    def _maintenance(self, now: float) -> None:
        """Aggregated per-entry route timeouts: one scan per interval."""
        for entry in self.routes.values():
            if entry.valid and entry.expires_at <= now:
                entry.valid = False

    def on_node_down(self) -> None:
        """Crash: routes, RREQ dedup state and buffered data are volatile.

        The node's own sequence number is durable (RFC 3561 §6.1 requires it
        to survive reboots to keep loop freedom), so it is kept.
        """
        self.routes.clear()
        self.seen_rreqs.clear()
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        if self.discovery is not None:
            self.discovery.abandon_all()

    # -- table helpers ------------------------------------------------------------

    def _entry(self, destination: NodeId) -> AodvRouteEntry:
        if destination not in self.routes:
            self.routes[destination] = AodvRouteEntry(destination)
        return self.routes[destination]

    def _valid_next_hop(self, destination: NodeId) -> Optional[NodeId]:
        entry = self.routes.get(destination)
        if entry and entry.valid and entry.expires_at > self.clock.now:
            return entry.next_hop
        return None

    def _update_route(
        self,
        destination: NodeId,
        next_hop: NodeId,
        sequence_number: int,
        hop_count: int,
        *,
        sequence_valid: bool = True,
    ) -> bool:
        """Install a route when it is fresher or equally fresh and shorter."""
        entry = self._entry(destination)
        fresher = (
            not entry.sequence_valid
            or sequence_number > entry.sequence_number
            or (
                sequence_number == entry.sequence_number
                and (not entry.valid or hop_count < entry.hop_count)
            )
        )
        if not fresher:
            return False
        entry.sequence_number = sequence_number
        entry.sequence_valid = sequence_valid
        entry.hop_count = hop_count
        entry.next_hop = next_hop
        entry.valid = True
        entry.expires_at = self.clock.now + self.config.route_lifetime
        return True

    def _refresh(self, destination: NodeId) -> None:
        entry = self.routes.get(destination)
        if entry and entry.valid:
            entry.expires_at = self.clock.now + self.config.route_lifetime

    # -- application data --------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self._valid_next_hop(packet.destination)
        if next_hop is not None:
            self._forward_data(packet, next_hop)
            return
        if not self.buffer.push(packet):
            self.data_drops += 1
        self.discovery.begin(packet.destination)

    def _forward_data(self, packet: Packet, next_hop: NodeId) -> None:
        self._refresh(packet.destination)
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, AodvRreq):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, AodvRrep):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, AodvRerr):
            self._handle_rerr(payload, from_node)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self._valid_next_hop(packet.destination)
        if next_hop is None:
            self.data_drops += 1
            entry = self.routes.get(packet.destination)
            sequence = entry.sequence_number + 1 if entry else 0
            rerr = AodvRerr(unreachable=((packet.destination, sequence),))
            self.node.send_unicast(
                self.make_control_packet(from_node, rerr, CONTROL_SIZES["rerr"]),
                from_node,
            )
            return
        self._forward_data(packet.copy_for_forwarding(), next_hop)

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        lost: List[Tuple[NodeId, int]] = []
        for destination, entry in self.routes.items():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                entry.sequence_number += 1  # AODV inflates the lost route's sn.
                lost.append((destination, entry.sequence_number))
        if packet.is_data and packet.source == self.node_id:
            if not self.buffer.push(packet):
                self.data_drops += 1
            self.discovery.begin(packet.destination)
        elif packet.is_data:
            self.data_drops += 1
        if lost:
            rerr = AodvRerr(unreachable=tuple(lost))
            self.node.send_broadcast(
                self.make_control_packet(self.node_id, rerr, CONTROL_SIZES["rerr"])
            )

    # -- route discovery ---------------------------------------------------------------

    def _send_rreq(self, destination: NodeId, rreq_id: int, attempt: int) -> None:
        # RFC 3561: the originator increments its own sequence number before
        # every RREQ — the source of AODV's fast sequence-number growth.
        self.own_sequence_number += 1
        entry = self.routes.get(destination)
        rreq = AodvRreq(
            source=self.node_id,
            source_sequence_number=self.own_sequence_number,
            rreq_id=rreq_id,
            destination=destination,
            destination_sequence_number=entry.sequence_number if entry else 0,
            destination_sequence_unknown=entry is None or not entry.sequence_valid,
            ttl=self.config.rreq_ttl,
        )
        self.seen_rreqs.add((self.node_id, rreq_id))
        self.node.send_broadcast(
            self.make_control_packet(destination, rreq, CONTROL_SIZES["rreq"])
        )

    def _discovery_failed(self, destination: NodeId) -> None:
        self.data_drops += self.buffer.drop_all(destination)

    def _handle_rreq(self, rreq: AodvRreq, from_node: NodeId) -> None:
        key = (rreq.source, rreq.rreq_id)
        if key in self.seen_rreqs or rreq.source == self.node_id or rreq.ttl <= 0:
            return
        self.seen_rreqs.add(key)
        # Reverse route toward the originator.
        self._update_route(
            rreq.source, from_node, rreq.source_sequence_number, rreq.hop_count + 1
        )
        if rreq.destination == self.node_id:
            # RFC 3561 §6.6.1: the destination takes the max of its own and the
            # requested sequence number, incrementing when they are equal.
            if (
                not rreq.destination_sequence_unknown
                and rreq.destination_sequence_number >= self.own_sequence_number
            ):
                self.own_sequence_number = rreq.destination_sequence_number + 1
            else:
                self.own_sequence_number += 1
            rrep = AodvRrep(
                source=rreq.source,
                destination=self.node_id,
                destination_sequence_number=self.own_sequence_number,
                hop_count=0,
                lifetime=self.config.route_lifetime,
            )
            self._send_rrep(rrep, from_node)
            return
        entry = self.routes.get(rreq.destination)
        can_answer = (
            entry is not None
            and entry.valid
            and entry.sequence_valid
            and (
                rreq.destination_sequence_unknown
                or entry.sequence_number >= rreq.destination_sequence_number
            )
        )
        if can_answer:
            rrep = AodvRrep(
                source=rreq.source,
                destination=rreq.destination,
                destination_sequence_number=entry.sequence_number,
                hop_count=entry.hop_count,
                lifetime=self.config.route_lifetime,
            )
            self._send_rrep(rrep, from_node)
            return
        relayed = rreq.relayed()
        if relayed.ttl <= 0:
            return
        self.node.send_broadcast(
            self.make_control_packet(rreq.destination, relayed, CONTROL_SIZES["rreq"])
        )

    def _send_rrep(self, rrep: AodvRrep, next_hop: NodeId) -> None:
        self.node.send_unicast(
            self.make_control_packet(rrep.source, rrep, CONTROL_SIZES["rrep"]),
            next_hop,
        )

    def _handle_rrep(self, rrep: AodvRrep, from_node: NodeId) -> None:
        self._update_route(
            rrep.destination,
            from_node,
            rrep.destination_sequence_number,
            rrep.hop_count + 1,
        )
        if rrep.source == self.node_id:
            self.discovery.complete(rrep.destination)
            next_hop = self._valid_next_hop(rrep.destination)
            if next_hop is not None:
                for packet in self.buffer.pop_all(rrep.destination):
                    self._forward_data(packet, next_hop)
            return
        # Forward the RREP along the reverse route toward the originator.
        reverse_hop = self._valid_next_hop(rrep.source)
        if reverse_hop is not None:
            self._send_rrep(rrep.relayed(), reverse_hop)

    def _handle_rerr(self, rerr: AodvRerr, from_node: NodeId) -> None:
        invalidated: List[Tuple[NodeId, int]] = []
        for destination, sequence in rerr.unreachable:
            entry = self.routes.get(destination)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == from_node
                and sequence >= entry.sequence_number
            ):
                entry.valid = False
                entry.sequence_number = sequence
                invalidated.append((destination, sequence))
        if invalidated:
            self.node.send_broadcast(
                self.make_control_packet(
                    self.node_id, AodvRerr(tuple(invalidated)), CONTROL_SIZES["rerr"]
                )
            )

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """Fig. 7: AODV's own sequence number grows with every discovery."""
        return self.own_sequence_number
