"""LDR — Loop-free Distance Routing (baseline, Garcia-Luna-Aceves, Mosko &
Perkins, PODC 2003).

LDR is the paper's closest relative: it keeps, per destination, a *feasible
distance* (the smallest distance ever accepted, non-increasing over time) and a
destination-controlled sequence number.  A node may only adopt a successor
whose advertised route is **in order**: a strictly larger sequence number, or
the same sequence number with a reported distance *smaller than the node's
feasible distance*.  When the feasible distances along a request path cannot be
put in order, the request carries a reset-required flag to the destination,
which answers with a larger sequence number — so LDR's sequence numbers grow,
but far more slowly than AODV's (Fig. 7), because most repairs succeed with
feasible-distance ordering alone.

SRP generalises exactly this scheme by making the "distance" a dense fraction
that can always be split locally, removing the need for most resets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import PacketBuffer, ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES, DiscoveryController, PeriodicTimer

__all__ = ["LdrConfig", "LdrProtocol", "LdrRreq", "LdrRrep", "LdrRerr"]

NodeId = Hashable

#: Feasible distance of a node that never had a route (anything is in order).
INFINITE_DISTANCE = float("inf")


@dataclass(frozen=True, slots=True)
class LdrRreq:
    """Route request carrying the requester's (sequence number, feasible distance)."""

    source: NodeId
    rreq_id: int
    destination: NodeId
    destination_sequence_number: int
    feasible_distance: float
    unknown: bool
    reset_required: bool = False
    hop_count: int = 0
    ttl: int = 64

    def relayed(self, *, reset_required: bool) -> "LdrRreq":
        return replace(
            self,
            hop_count=self.hop_count + 1,
            ttl=self.ttl - 1,
            reset_required=reset_required,
        )


@dataclass(frozen=True, slots=True)
class LdrRrep:
    """Route reply advertising (sequence number, distance) for the destination."""

    source: NodeId
    rreq_id: int
    destination: NodeId
    destination_sequence_number: int
    distance: float

    def relayed(self, *, distance: float) -> "LdrRrep":
        return replace(self, distance=distance)


@dataclass(frozen=True, slots=True)
class LdrRerr:
    """Route error listing destinations whose routes broke at the origin."""

    unreachable: Tuple[NodeId, ...]


@dataclass
class LdrRouteEntry:
    """Per-destination LDR state."""

    destination: NodeId
    sequence_number: int = 0
    #: Non-increasing within a sequence number; reset when the sn increases.
    feasible_distance: float = INFINITE_DISTANCE
    distance: float = INFINITE_DISTANCE
    next_hop: Optional[NodeId] = None
    valid: bool = False
    expires_at: float = 0.0


@dataclass(frozen=True, slots=True)
class LdrConfig(ProtocolConfig):
    """LDR timers and limits."""

    route_lifetime: float = 10.0
    discovery_timeout: float = 1.0
    max_discovery_attempts: int = 3
    buffer_size: int = 64
    rreq_ttl: int = 64
    maintenance_interval: float = 1.0


class LdrProtocol(RoutingProtocol):
    """One node's LDR instance."""

    name = "LDR"

    def __init__(self, config: Optional[LdrConfig] = None) -> None:
        super().__init__()
        self.config = config or LdrConfig()
        self.routes: Dict[NodeId, LdrRouteEntry] = {}
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        self.own_sequence_number = 0
        self.seen_rreqs: Set[Tuple[NodeId, int]] = set()
        self.reverse_path: Dict[Tuple[NodeId, int], NodeId] = {}
        self.discovery: Optional[DiscoveryController] = None
        self.data_drops = 0

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, node) -> None:
        super().attach(node)
        self.discovery = DiscoveryController(
            node.clock,
            send_request=self._send_rreq,
            give_up=self._discovery_failed,
            timeout=self.config.discovery_timeout,
            max_attempts=self.config.max_discovery_attempts,
        )

    def start(self) -> None:
        PeriodicTimer(
            self.clock, self.config.maintenance_interval, self._maintenance
        ).start()

    def _maintenance(self, now: float) -> None:
        """Aggregated per-entry route timeouts: one scan per interval."""
        for entry in self.routes.values():
            if entry.valid and entry.expires_at <= now:
                entry.valid = False

    def on_node_down(self) -> None:
        """Crash: routes, reverse paths and buffers are volatile; the own
        sequence number is durable (LDR inherits AODV's reboot rule)."""
        self.routes.clear()
        self.seen_rreqs.clear()
        self.reverse_path.clear()
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        if self.discovery is not None:
            self.discovery.abandon_all()

    # -- table helpers -------------------------------------------------------------

    def _entry(self, destination: NodeId) -> LdrRouteEntry:
        if destination not in self.routes:
            self.routes[destination] = LdrRouteEntry(destination)
        return self.routes[destination]

    def _valid_next_hop(self, destination: NodeId) -> Optional[NodeId]:
        entry = self.routes.get(destination)
        if entry and entry.valid and entry.expires_at > self.clock.now:
            return entry.next_hop
        return None

    def _in_order(
        self, entry: LdrRouteEntry, sequence_number: int, distance: float
    ) -> bool:
        """The LDR feasibility condition for accepting an advertised route."""
        if sequence_number > entry.sequence_number:
            return True
        if sequence_number < entry.sequence_number:
            return False
        return distance < entry.feasible_distance

    def _accept_route(
        self,
        destination: NodeId,
        next_hop: NodeId,
        sequence_number: int,
        distance: float,
    ) -> bool:
        entry = self._entry(destination)
        if not self._in_order(entry, sequence_number, distance):
            return False
        if sequence_number > entry.sequence_number:
            # A fresher sequence number resets the feasible distance.
            entry.feasible_distance = distance
        else:
            entry.feasible_distance = min(entry.feasible_distance, distance)
        entry.sequence_number = sequence_number
        entry.distance = distance
        entry.next_hop = next_hop
        entry.valid = True
        entry.expires_at = self.clock.now + self.config.route_lifetime
        return True

    # -- application data -------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self._valid_next_hop(packet.destination)
        if next_hop is not None:
            self._forward_data(packet, next_hop)
            return
        if not self.buffer.push(packet):
            self.data_drops += 1
        self.discovery.begin(packet.destination)

    def _forward_data(self, packet: Packet, next_hop: NodeId) -> None:
        entry = self.routes.get(packet.destination)
        if entry is not None and entry.valid:
            entry.expires_at = self.clock.now + self.config.route_lifetime
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, LdrRreq):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, LdrRrep):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, LdrRerr):
            self._handle_rerr(payload, from_node)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self._valid_next_hop(packet.destination)
        if next_hop is None:
            self.data_drops += 1
            rerr = LdrRerr(unreachable=(packet.destination,))
            self.node.send_unicast(
                self.make_control_packet(from_node, rerr, CONTROL_SIZES["rerr"]),
                from_node,
            )
            return
        self._forward_data(packet.copy_for_forwarding(), next_hop)

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        lost: List[NodeId] = []
        for destination, entry in self.routes.items():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                lost.append(destination)
        if packet.is_data and packet.source == self.node_id:
            if not self.buffer.push(packet):
                self.data_drops += 1
            self.discovery.begin(packet.destination)
        elif packet.is_data:
            self.data_drops += 1
        if lost:
            self.node.send_broadcast(
                self.make_control_packet(
                    self.node_id, LdrRerr(tuple(lost)), CONTROL_SIZES["rerr"]
                )
            )

    # -- route discovery ---------------------------------------------------------------

    def _send_rreq(self, destination: NodeId, rreq_id: int, attempt: int) -> None:
        entry = self.routes.get(destination)
        rreq = LdrRreq(
            source=self.node_id,
            rreq_id=rreq_id,
            destination=destination,
            destination_sequence_number=entry.sequence_number if entry else 0,
            feasible_distance=(
                entry.feasible_distance if entry else INFINITE_DISTANCE
            ),
            unknown=entry is None,
            ttl=self.config.rreq_ttl,
        )
        self.seen_rreqs.add((self.node_id, rreq_id))
        self.node.send_broadcast(
            self.make_control_packet(destination, rreq, CONTROL_SIZES["rreq"])
        )

    def _discovery_failed(self, destination: NodeId) -> None:
        self.data_drops += self.buffer.drop_all(destination)

    def _handle_rreq(self, rreq: LdrRreq, from_node: NodeId) -> None:
        key = (rreq.source, rreq.rreq_id)
        if key in self.seen_rreqs or rreq.source == self.node_id or rreq.ttl <= 0:
            return
        self.seen_rreqs.add(key)
        self.reverse_path[key] = from_node

        if rreq.destination == self.node_id:
            # Destination-controlled reset: only bump the sequence number when
            # the request says ordering cannot be repaired in place (or it
            # already reflects our current number, so freshness is required).
            if rreq.reset_required or (
                not rreq.unknown
                and rreq.destination_sequence_number >= self.own_sequence_number
            ):
                self.own_sequence_number = max(
                    self.own_sequence_number + 1,
                    rreq.destination_sequence_number + 1,
                )
            rrep = LdrRrep(
                source=rreq.source,
                rreq_id=rreq.rreq_id,
                destination=self.node_id,
                destination_sequence_number=self.own_sequence_number,
                distance=0.0,
            )
            self._send_rrep(rrep, from_node)
            return

        entry = self.routes.get(rreq.destination)
        can_answer = (
            entry is not None
            and entry.valid
            and not rreq.reset_required
            and (
                rreq.unknown
                or entry.sequence_number > rreq.destination_sequence_number
                or (
                    entry.sequence_number == rreq.destination_sequence_number
                    and entry.distance < rreq.feasible_distance
                )
            )
        )
        if can_answer:
            rrep = LdrRrep(
                source=rreq.source,
                rreq_id=rreq.rreq_id,
                destination=rreq.destination,
                destination_sequence_number=entry.sequence_number,
                distance=entry.distance,
            )
            self._send_rrep(rrep, from_node)
            return

        # Out-of-order relays request a reset so the destination issues a
        # fresher sequence number the whole path can adopt.
        reset_required = rreq.reset_required
        if (
            entry is not None
            and not rreq.unknown
            and entry.sequence_number == rreq.destination_sequence_number
            and entry.feasible_distance >= rreq.feasible_distance
        ):
            reset_required = True
        relayed = rreq.relayed(reset_required=reset_required)
        if relayed.ttl <= 0:
            return
        self.node.send_broadcast(
            self.make_control_packet(rreq.destination, relayed, CONTROL_SIZES["rreq"])
        )

    def _send_rrep(self, rrep: LdrRrep, next_hop: NodeId) -> None:
        self.node.send_unicast(
            self.make_control_packet(rrep.source, rrep, CONTROL_SIZES["rrep"]),
            next_hop,
        )

    def _handle_rrep(self, rrep: LdrRrep, from_node: NodeId) -> None:
        accepted = self._accept_route(
            rrep.destination,
            from_node,
            rrep.destination_sequence_number,
            rrep.distance + 1.0,
        )
        if rrep.source == self.node_id:
            if accepted:
                self.discovery.complete(rrep.destination)
                next_hop = self._valid_next_hop(rrep.destination)
                if next_hop is not None:
                    for packet in self.buffer.pop_all(rrep.destination):
                        self._forward_data(packet, next_hop)
            return
        if not accepted:
            return
        reverse_hop = self.reverse_path.get((rrep.source, rrep.rreq_id))
        if reverse_hop is not None:
            entry = self.routes[rrep.destination]
            self._send_rrep(rrep.relayed(distance=entry.distance), reverse_hop)

    def _handle_rerr(self, rerr: LdrRerr, from_node: NodeId) -> None:
        lost: List[NodeId] = []
        for destination in rerr.unreachable:
            entry = self.routes.get(destination)
            if entry is not None and entry.valid and entry.next_hop == from_node:
                entry.valid = False
                lost.append(destination)
        if lost:
            self.node.send_broadcast(
                self.make_control_packet(
                    self.node_id, LdrRerr(tuple(lost)), CONTROL_SIZES["rerr"]
                )
            )

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """Fig. 7: LDR's sequence number grows only on destination resets."""
        return self.own_sequence_number
