"""A global-knowledge shortest-path "oracle" protocol.

The oracle is not part of the paper's comparison; it exists as a testing and
calibration aid.  At every forwarding decision it runs breadth-first search
over the channel's *true* current connectivity graph, so it delivers whenever
a path physically exists and pays zero control overhead.  Integration tests
use it to separate simulator effects (connectivity, MAC contention) from
routing-protocol effects, and the experiment harness can use it as an upper
bound on achievable delivery ratio for a scenario.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional

from ..sim.packet import Packet
from .base import RoutingProtocol

__all__ = ["OracleProtocol"]

NodeId = Hashable


class OracleProtocol(RoutingProtocol):
    """Forwarding by BFS over the true connectivity graph (no control packets)."""

    name = "Oracle"

    def __init__(self) -> None:
        super().__init__()
        self.data_drops = 0

    # -- helpers ----------------------------------------------------------------------

    def _channel(self):
        return self.node.mac._channel  # noqa: SLF001 - deliberate test-support access

    def _next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """First hop of the current shortest path, or None when disconnected."""
        channel = self._channel()
        if destination == self.node_id:
            return None
        parents: Dict[NodeId, NodeId] = {self.node_id: self.node_id}
        frontier = deque([self.node_id])
        while frontier:
            node = frontier.popleft()
            for neighbor in channel.neighbors_of(node):
                if neighbor in parents:
                    continue
                parents[neighbor] = node
                if neighbor == destination:
                    # Walk back to find the first hop out of this node.
                    hop = neighbor
                    while parents[hop] != self.node_id:
                        hop = parents[hop]
                    return hop
                frontier.append(neighbor)
        return None

    # -- RoutingProtocol interface -----------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        self._forward(packet)

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if not packet.is_data:
            return
        if self.deliver_or_forward_hook(packet):
            return
        self._forward(packet.copy_for_forwarding())

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        if packet.is_data:
            # The topology may have changed; try the (new) shortest path once.
            self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        next_hop = self._next_hop(packet.destination)
        if next_hop is None or packet.hops > 64:
            self.data_drops += 1
            return
        self.node.send_unicast(packet, next_hop)
