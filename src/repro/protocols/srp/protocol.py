"""The Split-label Routing Protocol (SRP) — Section III of the paper.

SRP is an on-demand protocol in the AODV mould whose loop-freedom comes from
keeping per-destination node labels — the composite ordering
``O = (sequence number, proper fraction)`` — in topological order at every
instant.  The implementation follows the paper's procedures:

* **Procedure 1 (Initiate Solicitation)** — flood a RREQ carrying the node's
  stored ordering for the destination (or the U bit), with retries on a timer.
* **Procedure 2 (Relay Solicitation)** — each relay becomes *engaged* for the
  ``(source, rreq_id)`` computation at most once, caches the requested
  ordering and the reverse-path last hop, answers if the Start Distance
  Condition (SDC) holds, and otherwise relays the strengthened solicitation
  (Eqs. 9–11, including the reset-required T bit on imminent overflow).
* **Procedure 3 (Set Route)** — a feasible advertisement makes the node
  compute a new ordering with Algorithm 1 (``repro.core.neworder``); a finite
  result installs the advertiser as a successor and relabels the node.
* **Procedure 4 (Relay Advertisement)** — non-terminus nodes re-issue the
  advertisement with their *own* new ordering along the cached reverse path,
  at most once per computation.

The destination controls the sequence number: it only increases it when a
solicitation arrives with the reset-required bit (or a unicast D-bit probe),
which in practice almost never happens — reproducing Fig. 7's "SRP is exactly
zero" result.  The protocol also implements the paper's simulation heuristics:
the RREQ ordering "lie" and a minimum reply distance under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from ...core.fractions import DEFAULT_MAX_DENOMINATOR, UINT32_MAX, ProperFraction
from ...core.neworder import new_order, new_order_for_rreq_advertisement
from ...core.ordering import UNASSIGNED, Ordering, ordering_min
from ...sim.packet import Packet
from ..base import PacketBuffer, ProtocolConfig, RoutingProtocol
from ..common import (
    CONTROL_SIZES,
    ComputationState,
    DiscoveryController,
    PeriodicTimer,
    RreqCache,
)
from .messages import DELETE_PERIOD, SrpRerr, SrpRrep, SrpRreq
from .table import SrpRoutingTable

__all__ = ["SrpConfig", "SrpProtocol"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class SrpConfig(ProtocolConfig):
    """Tunable SRP parameters (defaults follow the paper where it gives them)."""

    route_lifetime: float = 10.0
    discovery_timeout: float = 1.0
    max_discovery_attempts: int = 3
    buffer_size: int = 64
    rreq_ttl: int = 64
    fraction_limit: int = UINT32_MAX
    max_denominator: int = DEFAULT_MAX_DENOMINATOR
    #: Estimated per-hop age increment for the OSPF-style Age field.
    hop_age_increment: float = 0.01
    #: The paper's heuristic: lie about the ordering in RREQs so only strictly
    #: better nodes reply ("false positive" RREP avoidance).
    lie_in_rreq: bool = True
    lie_scale: int = 10_000
    #: Minimum traversed distance before an intermediate node may answer a
    #: RREQ ("RREQ packets need to travel several hops before allowing a node
    #: to reply").  The destination always answers.
    min_reply_distance: float = 2.0
    maintenance_interval: float = 1.0


class SrpProtocol(RoutingProtocol):
    """One node's SRP instance."""

    name = "SRP"

    def __init__(self, config: Optional[SrpConfig] = None) -> None:
        super().__init__()
        self.config = config or SrpConfig()
        self.table = SrpRoutingTable(route_lifetime=self.config.route_lifetime)
        self.rreq_cache = RreqCache(max_age=DELETE_PERIOD)
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        # Definition 7: the node's sequence number for itself is non-zero.  A
        # real deployment uses a 64-bit clock; a monotone counter is equivalent
        # for the protocol logic and makes Fig. 7's metric easy to read.
        self.initial_sequence_number = 1
        self.own_sequence_number = 1
        self.discovery: Optional[DiscoveryController] = None
        self.data_drops = 0
        self.path_reset_requests = 0

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, node) -> None:
        super().attach(node)
        self.discovery = DiscoveryController(
            node.clock,
            send_request=self._initiate_solicitation,
            give_up=self._discovery_failed,
            timeout=self.config.discovery_timeout,
            max_attempts=self.config.max_discovery_attempts,
        )

    def start(self) -> None:
        # Definition 7: O_A_A = (sn, 0/1).
        self.table.set_own_ordering(
            self.node_id,
            Ordering(self.own_sequence_number, ProperFraction.zero()),
            0.0,
        )
        PeriodicTimer(
            self.clock, self.config.maintenance_interval, self._maintenance
        ).start()

    def _maintenance(self, now: float) -> None:
        """Aggregated per-entry timeouts: one scan per interval per node."""
        newly_invalid = self.table.expire_stale_successors(now)
        self.rreq_cache.expire(now)
        if newly_invalid:
            self._send_rerr(newly_invalid)

    def on_node_down(self) -> None:
        """Crash: volatile state dies; the own sequence number survives.

        Definition 7's labels live in the routing table, which a power loss
        wipes; the destination-controlled sequence number is durable (the
        paper equates it with a clock), so churn alone never advances Fig. 7's
        SRP-is-zero metric.
        """
        self.table = SrpRoutingTable(route_lifetime=self.config.route_lifetime)
        self.rreq_cache = RreqCache(max_age=DELETE_PERIOD)
        self.buffer = PacketBuffer(max_per_destination=self.config.buffer_size)
        if self.discovery is not None:
            self.discovery.abandon_all()

    def on_node_up(self) -> None:
        """Reboot: restore the node's own ordering (Definition 7)."""
        self.table.set_own_ordering(
            self.node_id, self._self_ordering(), self.clock.now
        )

    # -- own ordering helpers --------------------------------------------------------

    def own_ordering(self, destination: NodeId) -> Ordering:
        """The node's stored ordering for ``destination`` (unassigned if none)."""
        entry = self.table.lookup(destination)
        return entry.ordering if entry else UNASSIGNED

    def _self_ordering(self) -> Ordering:
        """The node's ordering for itself (sequence number, 0/1)."""
        return Ordering(self.own_sequence_number, ProperFraction.zero())

    def _bump_own_sequence_number(self, at_least: int = 0) -> None:
        """Destination-controlled reset: only the destination raises its own sn."""
        self.own_sequence_number = max(self.own_sequence_number + 1, at_least)
        self.table.set_own_ordering(self.node_id, self._self_ordering(), 0.0)

    # -- application data path ---------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.table.next_hop(packet.destination)
        if next_hop is not None:
            self._forward_data(packet, next_hop)
            return
        if not self.buffer.push(packet):
            self.data_drops += 1
        self.discovery.begin(packet.destination)

    def _forward_data(self, packet: Packet, next_hop: NodeId) -> None:
        self.table.refresh_successor(packet.destination, next_hop, self.clock.now)
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, SrpRreq):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, SrpRrep):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, SrpRerr):
            self._handle_rerr(payload, from_node)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.table.next_hop(packet.destination)
        if next_hop is None:
            # No successor: unicast a route error to the data packet's last hop.
            self.data_drops += 1
            self._send_rerr([packet.destination], unicast_to=from_node)
            return
        self._forward_data(packet.copy_for_forwarding(), next_hop)

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        newly_invalid = self.table.remove_neighbor_everywhere(next_hop)
        if packet.is_data:
            # Packet cache behaviour: break the next hop and resend over an
            # alternative successor when one exists (SRP is multi-path).
            alternative = self.table.next_hop(packet.destination)
            if alternative is not None:
                self._forward_data(packet, alternative)
            elif packet.source == self.node_id:
                if not self.buffer.push(packet):
                    self.data_drops += 1
                self.discovery.begin(packet.destination)
            else:
                self.data_drops += 1
        if newly_invalid:
            self._send_rerr(newly_invalid)

    # -- RERR --------------------------------------------------------------------------

    def _send_rerr(
        self, destinations: List[NodeId], unicast_to: Optional[NodeId] = None
    ) -> None:
        rerr = SrpRerr(unreachable=tuple(destinations), origin=self.node_id)
        packet = self.make_control_packet(
            unicast_to if unicast_to is not None else self.node_id,
            rerr,
            CONTROL_SIZES["rerr"],
        )
        if unicast_to is not None:
            self.node.send_unicast(packet, unicast_to)
        else:
            self.node.send_broadcast(packet)

    def _handle_rerr(self, rerr: SrpRerr, from_node: NodeId) -> None:
        newly_invalid = []
        for destination in rerr.unreachable:
            if self.table.remove_successor(destination, from_node):
                newly_invalid.append(destination)
        if newly_invalid:
            self._send_rerr(newly_invalid)

    # -- Procedure 1: initiate solicitation --------------------------------------------

    def _initiate_solicitation(
        self, destination: NodeId, rreq_id: int, attempt: int
    ) -> None:
        entry = self.table.lookup(destination)
        if entry is not None and entry.is_assigned:
            requested = self._maybe_lie(entry.ordering)
            unknown = False
        else:
            requested = UNASSIGNED
            unknown = True
        rreq = SrpRreq(
            source=self.node_id,
            rreq_id=rreq_id,
            destination=destination,
            requested_ordering=requested,
            unknown_ordering=unknown,
            source_ordering=self._self_ordering(),
            ttl=self.config.rreq_ttl,
        )
        self.rreq_cache.activate(self.node_id, rreq_id, self.clock.now)
        packet = self.make_control_packet(destination, rreq, CONTROL_SIZES["rreq"])
        self.node.send_broadcast(packet)

    def _maybe_lie(self, ordering: Ordering) -> Ordering:
        """The paper's heuristic: advertise a slightly smaller fraction in the
        RREQ so only nodes strictly closer to the destination answer."""
        if not self.config.lie_in_rreq or not ordering.is_finite:
            return ordering
        m, n = ordering.fraction.as_tuple()
        if m > 1:
            fraction = ProperFraction(m - 1, n - 1)
        else:
            scale = self.config.lie_scale
            fraction = ProperFraction(max(m * scale - 1, 0), n * scale - 1)
        return Ordering(ordering.sequence_number, fraction)

    def _discovery_failed(self, destination: NodeId) -> None:
        self.data_drops += self.buffer.drop_all(destination)

    # -- Procedure 2: relay solicitation -----------------------------------------------

    def _handle_rreq(self, rreq: SrpRreq, from_node: NodeId) -> None:
        if rreq.expired or rreq.source == self.node_id:
            return
        if (
            self.rreq_cache.state_of(rreq.source, rreq.rreq_id)
            is not ComputationState.PASSIVE
        ):
            return
        entry = self.rreq_cache.try_engage(
            rreq.source,
            rreq.rreq_id,
            self.clock.now,
            last_hop=from_node,
            cached_ordering=rreq.requested_ordering,
        )
        if entry is None:
            return

        # The RREQ's advertisement piece lets relays build a reverse route to
        # the source, unless the N bit is already set.
        built_reverse_path = True
        if not rreq.no_reverse_path and rreq.source_ordering is not None:
            built_reverse_path = self._accept_rreq_advertisement(
                rreq, from_node
            )

        if rreq.destination == self.node_id:
            self._reply_as_destination(rreq, from_node)
            return
        if not rreq.destination_only and self._satisfies_sdc(rreq):
            self._reply_as_intermediate(rreq, from_node)
            return
        self._relay_solicitation(rreq, from_node, built_reverse_path)

    def _accept_rreq_advertisement(self, rreq: SrpRreq, from_node: NodeId) -> bool:
        """Treat the RREQ as an advertisement for its source (reverse path).

        Returns True when the routing table was updated (so the relayed RREQ
        may keep advertising the source); False means the relay must set the
        N bit (the RREQ "is no longer an advertisement for the source").
        """
        source = rreq.source
        entry = self.table.entry(source)
        advertised = rreq.source_ordering
        if not entry.ordering.precedes(advertised):
            return False
        result = new_order_for_rreq_advertisement(
            entry.ordering,
            advertised,
            {n: s.ordering for n, s in entry.successors.items()},
            limit=self.config.fraction_limit,
        )
        if not result.is_finite:
            return False
        self.table.set_own_ordering(
            source, result.ordering, rreq.traversed_distance + 1.0
        )
        self.table.add_successor(
            source,
            from_node,
            advertised,
            rreq.traversed_distance + 1.0,
            self.clock.now,
            lifetime=rreq.lifetime,
        )
        self.table.drop_out_of_order_successors(source)
        return True

    def _satisfies_sdc(self, rreq: SrpRreq) -> bool:
        """Condition 1 (Start Distance Condition) plus the min-reply-distance
        heuristic the paper applies under high load."""
        entry = self.table.lookup(rreq.destination)
        if entry is None or not entry.is_active:
            return False
        if rreq.traversed_distance < self.config.min_reply_distance:
            return False
        requested = rreq.requested_ordering
        if rreq.unknown_ordering:
            requested = UNASSIGNED
        if entry.ordering.sequence_number > requested.sequence_number:
            return True
        return requested.precedes(entry.ordering) and not rreq.reset_required

    def _reply_as_destination(self, rreq: SrpRreq, from_node: NodeId) -> None:
        requested = rreq.requested_ordering
        if rreq.reset_required or rreq.destination_only:
            # The destination must answer with a strictly larger sequence
            # number than requested so the reply resets the path ordering.
            self._bump_own_sequence_number(at_least=requested.sequence_number + 1)
        elif requested.sequence_number > self.own_sequence_number:
            # Never answer with a sequence number older than the request.
            self._bump_own_sequence_number(at_least=requested.sequence_number)
        self._send_advertisement(
            rreq.source,
            rreq.rreq_id,
            self.node_id,
            self._self_ordering(),
            0.0,
            to_neighbor=from_node,
        )

    def _reply_as_intermediate(self, rreq: SrpRreq, from_node: NodeId) -> None:
        entry = self.table.lookup(rreq.destination)
        self._send_advertisement(
            rreq.source,
            rreq.rreq_id,
            rreq.destination,
            entry.ordering,
            entry.distance,
            to_neighbor=from_node,
        )

    def _relay_solicitation(
        self, rreq: SrpRreq, from_node: NodeId, built_reverse_path: bool
    ) -> None:
        my_entry = self.table.lookup(rreq.destination)
        my_ordering = my_entry.ordering if my_entry else UNASSIGNED
        requested = rreq.requested_ordering

        # Eq. 10: the relayed solicitation carries the minimum ordering.
        if rreq.unknown_ordering and not (my_entry and my_entry.is_assigned):
            relayed_ordering = UNASSIGNED
        elif my_ordering.sequence_number > requested.sequence_number:
            relayed_ordering = my_ordering
        elif my_ordering.sequence_number == requested.sequence_number:
            relayed_ordering = ordering_min(my_ordering, requested)
        else:
            relayed_ordering = requested

        # Eq. 11: the reset-required bit.
        if rreq.unknown_ordering and not (my_entry and my_entry.is_assigned):
            reset_required = False
        elif my_ordering.sequence_number > requested.sequence_number:
            reset_required = False
        elif not requested.precedes(my_ordering) and requested.would_overflow_with(
            my_ordering, self.config.fraction_limit
        ):
            reset_required = True
        else:
            reset_required = rreq.reset_required

        # The advertisement piece of the relayed RREQ must carry *this relay's*
        # ordering for the source, exactly as a relayed RREP carries the
        # relay's own ordering (Procedure 4); forwarding the original source
        # ordering unchanged would let two relays with equal labels adopt each
        # other as successors and create a loop.
        source_entry = self.table.lookup(rreq.source)
        can_advertise_source = (
            built_reverse_path
            and not rreq.no_reverse_path
            and source_entry is not None
            and source_entry.is_active
            and source_entry.is_assigned
        )
        relayed = rreq.relayed(
            requested_ordering=relayed_ordering,
            traversed_distance=rreq.traversed_distance + 1.0,
            reset_required=reset_required,
            no_reverse_path=not can_advertise_source,
            source_ordering=source_entry.ordering if can_advertise_source else None,
            source_distance=source_entry.distance if can_advertise_source else 0.0,
            age_increment=self.config.hop_age_increment,
        )
        if relayed.expired:
            return
        packet = self.make_control_packet(
            rreq.destination, relayed, CONTROL_SIZES["rreq"]
        )
        self.node.send_broadcast(packet)

    # -- Procedures 3 and 4: set route and relay advertisement -------------------------

    def _send_advertisement(
        self,
        source: NodeId,
        rreq_id: int,
        destination: NodeId,
        ordering: Ordering,
        distance: float,
        *,
        to_neighbor: NodeId,
        no_reverse_path: bool = False,
    ) -> None:
        entry = self.rreq_cache.get(source, rreq_id)
        if entry is not None:
            if entry.replied:
                return
            entry.replied = True
        rrep = SrpRrep(
            source=source,
            rreq_id=rreq_id,
            destination=destination,
            advertised_ordering=ordering,
            advertised_distance=distance,
            no_reverse_path=no_reverse_path,
        )
        packet = self.make_control_packet(source, rrep, CONTROL_SIZES["rrep"])
        self.node.send_unicast(packet, to_neighbor)

    def _handle_rrep(self, rrep: SrpRrep, from_node: NodeId) -> None:
        if rrep.expired:
            return
        destination = rrep.destination
        if destination == self.node_id:
            return
        entry = self.table.entry(destination)
        advertised = rrep.advertised_ordering
        terminus = rrep.source == self.node_id
        cache_entry = self.rreq_cache.get(rrep.source, rrep.rreq_id)

        # Feasibility (Theorem 2 / Eq. 5 precondition): the advertised ordering
        # must be strictly closer to the destination than our own.
        if not entry.ordering.precedes(advertised):
            # Infeasible: a node with positive out-degree may issue a new
            # advertisement based on its current label.
            if entry.is_active and not terminus and cache_entry is not None:
                self._relay_advertisement(rrep, entry)
            return

        cached = UNASSIGNED
        if not terminus and cache_entry is not None:
            cached = cache_entry.cached_ordering or UNASSIGNED

        successors = {n: s.ordering for n, s in entry.successors.items()}
        result = new_order(
            entry.ordering,
            cached,
            advertised,
            successors,
            limit=self.config.fraction_limit,
        )
        if not result.is_finite:
            return
        distance = rrep.advertised_distance + 1.0
        self.table.set_own_ordering(destination, result.ordering, distance)
        self.table.add_successor(
            destination,
            from_node,
            advertised,
            distance,
            self.clock.now,
            lifetime=rrep.lifetime,
        )
        self.table.drop_out_of_order_successors(destination)

        if terminus:
            self._route_established(destination, result.ordering, rrep)
        else:
            self._relay_advertisement(rrep, self.table.entry(destination))

    def _relay_advertisement(self, rrep: SrpRrep, entry) -> None:
        """Procedure 4: forward the advertisement with this node's own ordering
        along the cached reverse path, at most once per computation."""
        cache_entry = self.rreq_cache.get(rrep.source, rrep.rreq_id)
        if cache_entry is None or cache_entry.last_hop is None or cache_entry.replied:
            return
        cache_entry.replied = True
        relayed = rrep.relayed(
            advertised_ordering=entry.ordering,
            advertised_distance=entry.distance,
            age_increment=self.config.hop_age_increment,
        )
        if relayed.expired:
            return
        packet = self.make_control_packet(rrep.source, relayed, CONTROL_SIZES["rrep"])
        self.node.send_unicast(packet, cache_entry.last_hop)

    def _route_established(
        self, destination: NodeId, ordering: Ordering, rrep: SrpRrep
    ) -> None:
        """The requester's route is up: flush buffered data, check for resets."""
        self.discovery.complete(destination)
        next_hop = self.table.next_hop(destination)
        if next_hop is not None:
            for packet in self.buffer.pop_all(destination):
                self._forward_data(packet, next_hop)
        # Path-reset conditions at the terminus: an oversized denominator, or
        # a reply whose reverse path could not be built (N bit).
        if (
            ordering.fraction.denominator > self.config.max_denominator
            or rrep.no_reverse_path
        ):
            self._request_path_reset(destination)

    def _request_path_reset(self, destination: NodeId) -> None:
        """Send a unicast D-bit RREQ along the forward path; the destination
        answers with a larger sequence number, resetting the ordering."""
        next_hop = self.table.next_hop(destination)
        if next_hop is None:
            return
        self.path_reset_requests += 1
        rreq = SrpRreq(
            source=self.node_id,
            rreq_id=self.discovery.next_rreq_id(),
            destination=destination,
            requested_ordering=self.own_ordering(destination),
            destination_only=True,
            source_ordering=self._self_ordering(),
            ttl=self.config.rreq_ttl,
        )
        self.rreq_cache.activate(self.node_id, rreq.rreq_id, self.clock.now)
        packet = self.make_control_packet(destination, rreq, CONTROL_SIZES["rreq"])
        self.node.send_unicast(packet, next_hop)

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """Fig. 7: how far this node's own sequence number grew (0 for SRP in
        practice, because the destination almost never needs to reset)."""
        return self.own_sequence_number - self.initial_sequence_number
