"""SRP control messages (Section III of the paper).

SRP reuses AODV's packet types — RREQ, RREP, RERR, RACK — with extensively
modified fields.  A RREQ has a *solicitation* piece (who is looking for whom,
at what ordering) and an *advertisement* piece (the requester advertising its
own route back, so relays can build a reverse path).  The flag bits follow the
paper:

* **U** — the requester has no stored ordering for the destination.
* **N** — the RREQ is no longer an advertisement for the source (a relay could
  not update its table from it), so receivers must not build a reverse path.
* **D** — the RREQ must travel all the way to the destination (used for
  unicast path-reset probes).
* **T** (``rr``) — reset required: an ordering violation could occur along the
  path (e.g. imminent fraction overflow), so the destination must answer with
  a larger sequence number.

All multi-hop control packets carry an ``age`` field (like OSPF); packets
whose age reaches ``DELETE_PERIOD`` are discarded so no packet referencing a
forgotten label survives in the network.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Optional, Tuple

from ...core.ordering import Ordering

__all__ = ["SrpRreq", "SrpRrep", "SrpRerr", "SrpRack", "DELETE_PERIOD"]

NodeId = Hashable

#: Seconds after which control packets and forgotten labels expire (the paper
#: uses 60 s).
DELETE_PERIOD = 60.0


@dataclass(frozen=True, slots=True)
class SrpRreq:
    """Route request: solicitation piece plus optional source advertisement."""

    # Solicitation piece.
    source: NodeId
    rreq_id: int
    destination: NodeId
    requested_ordering: Ordering
    traversed_distance: float = 0.0
    unknown_ordering: bool = False        # U bit
    reset_required: bool = False          # T bit (rr)
    destination_only: bool = False        # D bit
    no_reverse_path: bool = False         # N bit
    # Advertisement piece (the source advertising itself).
    source_ordering: Optional[Ordering] = None
    source_distance: float = 0.0
    lifetime: float = DELETE_PERIOD
    # Bookkeeping.
    age: float = 0.0
    ttl: int = 64

    def relayed(
        self,
        *,
        requested_ordering: Ordering,
        traversed_distance: float,
        reset_required: bool,
        no_reverse_path: bool,
        age_increment: float,
        source_ordering: Optional[Ordering] = None,
        source_distance: float = 0.0,
    ) -> "SrpRreq":
        """The copy a relay broadcasts (Procedure 2, Eqs. 9–11).

        The advertisement piece must carry the *relay's own* ordering for the
        source ("the last-hop feasible distance ... set according to the rules
        below for advertisements"), never the stale ordering of an earlier
        hop; when the relay has no active route back to the source it sets the
        N bit and downstream nodes must not build a reverse path from it.
        """
        return replace(
            self,
            requested_ordering=requested_ordering,
            traversed_distance=traversed_distance,
            reset_required=reset_required,
            no_reverse_path=no_reverse_path,
            source_ordering=source_ordering if not no_reverse_path else None,
            source_distance=source_distance,
            age=self.age + age_increment,
            ttl=self.ttl - 1,
        )

    @property
    def expired(self) -> bool:
        """True when the packet must be dropped (age or TTL exhausted)."""
        return self.age >= DELETE_PERIOD or self.ttl <= 0


@dataclass(frozen=True, slots=True)
class SrpRrep:
    """Route reply / advertisement travelling the reverse path of a RREQ."""

    source: NodeId                 # the terminus of the advertisement (RREQ origin)
    rreq_id: int
    destination: NodeId            # the destination being advertised
    advertised_ordering: Ordering  # (dstseqno, LF)
    advertised_distance: float     # ld
    lifetime: float = DELETE_PERIOD
    no_reverse_path: bool = False  # N bit copied from the RREQ when set
    age: float = 0.0

    def relayed(
        self,
        *,
        advertised_ordering: Ordering,
        advertised_distance: float,
        age_increment: float,
    ) -> "SrpRrep":
        """The advertisement a relay re-issues with its own ordering
        (Procedure 4)."""
        return replace(
            self,
            advertised_ordering=advertised_ordering,
            advertised_distance=advertised_distance,
            age=self.age + age_increment,
        )

    @property
    def expired(self) -> bool:
        """True when the advertisement must be dropped."""
        return self.age >= DELETE_PERIOD


@dataclass(frozen=True, slots=True)
class SrpRerr:
    """Route error: destinations that became unreachable at the sender."""

    unreachable: Tuple[NodeId, ...]
    origin: NodeId


@dataclass(frozen=True, slots=True)
class SrpRack:
    """Route-reply acknowledgment (carries src and rreq_id per the paper)."""

    source: NodeId
    rreq_id: int
