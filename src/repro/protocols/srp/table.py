"""The SRP routing table: per-destination orderings and successor sets.

For every destination ``T`` a node ``A`` keeps

* its own ordering ``O_A_T = (sn, F)``,
* a successor table ``S_A_T`` mapping each successor neighbour to the ordering
  it advertised (plus the measured distance through it), and
* timers: routes expire when unused (Definition 2) and an ordering must be
  remembered for ``DELETE_PERIOD`` after the route goes invalid
  (Definition 3).

SRP is inherently multi-path: any entry of the successor table may forward
data.  The default forwarding choice is the successor with the smallest
measured distance, i.e. the "min-hop set" suggested by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ...core.ordering import UNASSIGNED, Ordering, ordering_max

__all__ = ["SuccessorEntry", "SrpRouteEntry", "SrpRoutingTable"]

NodeId = Hashable


@dataclass
class SuccessorEntry:
    """One feasible successor toward a destination."""

    neighbor: NodeId
    ordering: Ordering
    distance: float
    expires_at: float


@dataclass
class SrpRouteEntry:
    """Everything node A knows about one destination T."""

    destination: NodeId
    ordering: Ordering = UNASSIGNED
    distance: float = float("inf")
    successors: Dict[NodeId, SuccessorEntry] = field(default_factory=dict)
    ordering_cached_until: float = float("inf")

    @property
    def is_active(self) -> bool:
        """Definition 2: a route is active while its successor set is non-empty."""
        return bool(self.successors)

    @property
    def is_assigned(self) -> bool:
        """Definition 3: the node is assigned when it holds a finite ordering."""
        return not self.ordering.is_unassigned

    def successor_maximum(self) -> Optional[Ordering]:
        """``S_max`` — the greatest successor ordering, or None when empty."""
        orderings = [entry.ordering for entry in self.successors.values()]
        if not orderings:
            return None
        result = orderings[0]
        for ordering in orderings[1:]:
            result = ordering_max(result, ordering)
        return result

    def best_successor(self) -> Optional[SuccessorEntry]:
        """The successor with the smallest measured distance (min-hop choice)."""
        if not self.successors:
            return None
        return min(self.successors.values(), key=lambda entry: entry.distance)


class SrpRoutingTable:
    """All destinations known at one node."""

    def __init__(self, *, route_lifetime: float = 10.0) -> None:
        self._entries: Dict[NodeId, SrpRouteEntry] = {}
        self._route_lifetime = route_lifetime

    # -- access ------------------------------------------------------------------

    def entry(self, destination: NodeId) -> SrpRouteEntry:
        """The (possibly empty) entry for ``destination``, created on demand."""
        if destination not in self._entries:
            self._entries[destination] = SrpRouteEntry(destination)
        return self._entries[destination]

    def lookup(self, destination: NodeId) -> Optional[SrpRouteEntry]:
        """The entry if one exists, without creating it."""
        return self._entries.get(destination)

    def destinations(self) -> List[NodeId]:
        """Every destination with table state."""
        return list(self._entries)

    def active_destinations(self) -> List[NodeId]:
        """Destinations with a non-empty successor set."""
        return [d for d, e in self._entries.items() if e.is_active]

    # -- mutation -------------------------------------------------------------------

    def set_own_ordering(
        self, destination: NodeId, ordering: Ordering, distance: float
    ) -> None:
        """Adopt a new ordering (the result of Algorithm 1) for a destination."""
        entry = self.entry(destination)
        entry.ordering = ordering
        entry.distance = distance

    def add_successor(
        self,
        destination: NodeId,
        neighbor: NodeId,
        ordering: Ordering,
        distance: float,
        now: float,
        *,
        lifetime: Optional[float] = None,
    ) -> None:
        """Insert or refresh a successor (Procedure 3's ``S_A_T,B`` update)."""
        entry = self.entry(destination)
        entry.successors[neighbor] = SuccessorEntry(
            neighbor=neighbor,
            ordering=ordering,
            distance=distance,
            expires_at=now + (lifetime or self._route_lifetime),
        )

    def refresh_successor(
        self, destination: NodeId, neighbor: NodeId, now: float
    ) -> None:
        """Extend the lifetime of a successor that just carried traffic."""
        entry = self._entries.get(destination)
        if entry and neighbor in entry.successors:
            entry.successors[neighbor].expires_at = now + self._route_lifetime

    def remove_successor(self, destination: NodeId, neighbor: NodeId) -> bool:
        """Remove one successor; True when the route just became invalid."""
        entry = self._entries.get(destination)
        if not entry or neighbor not in entry.successors:
            return False
        del entry.successors[neighbor]
        return not entry.is_active

    def remove_neighbor_everywhere(self, neighbor: NodeId) -> List[NodeId]:
        """Remove ``neighbor`` from every successor set (link failure).

        Returns the destinations whose routes became invalid as a result.
        """
        newly_invalid = []
        for destination, entry in self._entries.items():
            if neighbor in entry.successors:
                del entry.successors[neighbor]
                if not entry.is_active:
                    newly_invalid.append(destination)
        return newly_invalid

    def drop_out_of_order_successors(self, destination: NodeId) -> List[NodeId]:
        """Line 13 of Algorithm 1: eliminate successors the node's own ordering
        can no longer keep in order; returns who was dropped."""
        entry = self.entry(destination)
        dropped = [
            neighbor
            for neighbor, successor in entry.successors.items()
            if not entry.ordering.precedes(successor.ordering)
        ]
        for neighbor in dropped:
            del entry.successors[neighbor]
        return dropped

    def expire_stale_successors(self, now: float) -> List[NodeId]:
        """Time out unused successors; returns destinations that became invalid.

        Runs once per maintenance tick per node over every entry, so the
        common nothing-stale case allocates nothing and skips the
        ``is_active`` evaluation entirely (deleting nothing cannot change
        it).
        """
        newly_invalid = []
        for destination, entry in self._entries.items():
            successors = entry.successors
            if not successors:
                continue
            stale = None
            for neighbor, successor in successors.items():
                if successor.expires_at <= now:
                    if stale is None:
                        stale = [neighbor]
                    else:
                        stale.append(neighbor)
            if stale is None:
                continue
            was_active = entry.is_active
            for neighbor in stale:
                del successors[neighbor]
            if was_active and not entry.is_active:
                newly_invalid.append(destination)
        return newly_invalid

    # -- forwarding --------------------------------------------------------------------

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """The forwarding choice for data: the min-distance successor."""
        entry = self._entries.get(destination)
        if not entry:
            return None
        best = entry.best_successor()
        return best.neighbor if best else None

    def alternative_next_hop(
        self, destination: NodeId, excluding: NodeId
    ) -> Optional[NodeId]:
        """Another successor after ``excluding`` failed (multi-path repair)."""
        entry = self._entries.get(destination)
        if not entry:
            return None
        candidates = [
            successor
            for neighbor, successor in entry.successors.items()
            if neighbor != excluding
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda successor: successor.distance).neighbor
