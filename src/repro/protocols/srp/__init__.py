"""Split-label Routing Protocol (SRP) — the paper's protocol (Section III)."""

from .messages import DELETE_PERIOD, SrpRack, SrpRerr, SrpRrep, SrpRreq
from .protocol import SrpConfig, SrpProtocol
from .table import SrpRouteEntry, SrpRoutingTable, SuccessorEntry

__all__ = [
    "DELETE_PERIOD",
    "SrpRack",
    "SrpRerr",
    "SrpRrep",
    "SrpRreq",
    "SrpConfig",
    "SrpProtocol",
    "SrpRouteEntry",
    "SrpRoutingTable",
    "SuccessorEntry",
]
