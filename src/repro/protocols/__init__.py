"""Routing protocols: SRP (the paper's contribution) and its baselines.

``PROTOCOLS`` maps the names used throughout the evaluation (Table I and
Figures 3–7) to factories producing fresh per-node protocol instances, which
is the shape :func:`repro.sim.network.build_network` expects.
"""

from typing import Callable, Dict, Hashable

from .aodv import AodvConfig, AodvProtocol
from .base import PacketBuffer, ProtocolConfig, RoutingProtocol
from .common import ComputationState, DiscoveryController, RreqCache
from .dsr import DsrConfig, DsrProtocol
from .ldr import LdrConfig, LdrProtocol
from .olsr import OlsrConfig, OlsrProtocol
from .oracle import OracleProtocol
from .srp import SrpConfig, SrpProtocol

__all__ = [
    "AodvConfig",
    "AodvProtocol",
    "PacketBuffer",
    "ProtocolConfig",
    "RoutingProtocol",
    "ComputationState",
    "DiscoveryController",
    "RreqCache",
    "DsrConfig",
    "DsrProtocol",
    "LdrConfig",
    "LdrProtocol",
    "OlsrConfig",
    "OlsrProtocol",
    "OracleProtocol",
    "SrpConfig",
    "SrpProtocol",
    "PROTOCOLS",
    "protocol_factory",
]

#: Name -> protocol class for the five protocols in the paper's evaluation,
#: plus the testing oracle.
PROTOCOLS: Dict[str, type] = {
    "SRP": SrpProtocol,
    "LDR": LdrProtocol,
    "AODV": AodvProtocol,
    "DSR": DsrProtocol,
    "OLSR": OlsrProtocol,
    "Oracle": OracleProtocol,
}


def protocol_factory(name: str) -> Callable[[Hashable], RoutingProtocol]:
    """A per-node factory for the named protocol (for ``build_network``)."""
    try:
        protocol_class = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        ) from None
    return lambda node_id: protocol_class()
