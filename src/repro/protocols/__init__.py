"""Routing protocols: SRP (the paper's contribution), its baselines, and LSR.

``PROTOCOLS`` is the single registry every consumer goes through — the sweep
planner, the CLI, the profiler's reference side and the live runtime all
resolve a protocol name to a :class:`ProtocolSpec` here, so "what protocols
exist and how is one configured" lives in exactly one place instead of
per-protocol conditionals scattered over ``build_network``/CLI/scenario code.

A spec bundles the protocol class with its config dataclass;
:meth:`ProtocolSpec.factory` produces the per-node factory shape
:func:`repro.sim.network.build_network` and the live runtime both expect,
accepting a config instance, a plain dict (via the
:class:`~repro.protocols.base.ProtocolConfig` ``from_dict`` contract), or
nothing for defaults.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Union

from .aodv import AodvConfig, AodvProtocol
from .base import PacketBuffer, ProtocolConfig, RoutingProtocol
from .common import ComputationState, DiscoveryController, RreqCache
from .dsr import DsrConfig, DsrProtocol
from .ldr import LdrConfig, LdrProtocol
from .lsr import LsrConfig, LsrProtocol
from .olsr import OlsrConfig, OlsrProtocol
from .oracle import OracleProtocol
from .srp import SrpConfig, SrpProtocol

__all__ = [
    "AodvConfig",
    "AodvProtocol",
    "PacketBuffer",
    "ProtocolConfig",
    "RoutingProtocol",
    "ComputationState",
    "DiscoveryController",
    "RreqCache",
    "DsrConfig",
    "DsrProtocol",
    "LdrConfig",
    "LdrProtocol",
    "LsrConfig",
    "LsrProtocol",
    "OlsrConfig",
    "OlsrProtocol",
    "OracleProtocol",
    "SrpConfig",
    "SrpProtocol",
    "ProtocolSpec",
    "PROTOCOLS",
    "protocol_factory",
    "resolve_config",
]

NodeId = Hashable

ConfigLike = Union[ProtocolConfig, Mapping[str, object], None]


@dataclass(frozen=True)
class ProtocolSpec:
    """One registry row: a protocol class plus how to configure it."""

    name: str
    protocol_class: type
    #: The protocol's config dataclass; ``None`` for configless protocols
    #: (the testing Oracle).
    config_class: Optional[type] = None

    def default_config(self) -> Optional[ProtocolConfig]:
        """A fresh default config instance (``None`` when configless)."""
        return self.config_class() if self.config_class is not None else None

    def make_config(self, config: ConfigLike = None) -> Optional[ProtocolConfig]:
        """Normalise ``config`` (instance, dict or ``None``) to an instance."""
        if config is None:
            return self.default_config()
        if self.config_class is None:
            raise ValueError(f"protocol {self.name!r} takes no config")
        if isinstance(config, self.config_class):
            return config
        if isinstance(config, Mapping):
            return self.config_class.from_dict(config)
        raise TypeError(
            f"config for {self.name!r} must be {self.config_class.__name__}, "
            f"a mapping, or None; got {type(config).__name__}"
        )

    def factory(
        self, config: ConfigLike = None
    ) -> Callable[[NodeId], RoutingProtocol]:
        """A per-node factory (the shape ``build_network`` expects)."""
        resolved = self.make_config(config)
        if resolved is None:
            return lambda node_id: self.protocol_class()
        return lambda node_id: self.protocol_class(resolved)


#: Name -> spec for the five protocols in the paper's evaluation, the LSR
#: link-state addition, and the testing oracle.
PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        ProtocolSpec("SRP", SrpProtocol, SrpConfig),
        ProtocolSpec("LDR", LdrProtocol, LdrConfig),
        ProtocolSpec("AODV", AodvProtocol, AodvConfig),
        ProtocolSpec("DSR", DsrProtocol, DsrConfig),
        ProtocolSpec("OLSR", OlsrProtocol, OlsrConfig),
        ProtocolSpec("LSR", LsrProtocol, LsrConfig),
        ProtocolSpec("Oracle", OracleProtocol, None),
    )
}


def _spec(name: str) -> ProtocolSpec:
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        ) from None


def resolve_config(name: str, config: ConfigLike = None) -> Optional[ProtocolConfig]:
    """Normalise a config for the named protocol (dict/instance/None)."""
    return _spec(name).make_config(config)


def protocol_factory(
    name: str, config: ConfigLike = None
) -> Callable[[NodeId], RoutingProtocol]:
    """A per-node factory for the named protocol (for ``build_network``).

    ``config`` may be a config instance, a JSON-style dict (validated via
    the ``from_dict`` contract), or ``None`` for the protocol's defaults.
    """
    return _spec(name).factory(config)
