"""Machinery shared by the on-demand protocols (SRP, AODV, LDR, DSR).

All four on-demand protocols in the paper share the same outer skeleton:

* a **route-request cache** that remembers which ``(source, rreq_id)``
  computations this node has already participated in, with the
  passive / engaged / active states of LDR and SRP, the cached reverse-path
  last hop and any per-computation ordering information;
* a **route-discovery controller** per destination at the source: it numbers
  RREQs, runs the retry timer (``2 * ttl * latency`` in the paper), counts
  attempts and finally gives up, dropping buffered data.

Keeping these here means the per-protocol modules contain only what actually
differs: the loop-prevention state (sequence numbers, feasible distances,
fraction orderings) and the reply/accept conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = [
    "ComputationState",
    "RreqCacheEntry",
    "RreqCache",
    "DiscoveryController",
    "DiscoveryState",
    "PeriodicTimer",
    "CONTROL_SIZES",
]

NodeId = Hashable

#: Nominal control-packet sizes in bytes (IP + UDP + protocol header), used
#: only for transmission-time computation.
CONTROL_SIZES = {
    "rreq": 52,
    "rrep": 44,
    "rerr": 32,
    "hello": 40,
    "tc": 60,
}


class PeriodicTimer:
    """One repeating timer event driving a per-node maintenance scan.

    Every protocol in the repository aggregates its per-entry timeouts
    (route lifetimes, RREQ-cache ages, discovery retries that expired) into
    one periodic tick per node instead of one timer event per entry —
    the timer-wheel idea at its coarsest.  This class is that tick: it
    calls ``callback(now)`` every ``interval`` seconds, rescheduling itself
    *after* the callback exactly as the protocols' hand-rolled maintenance
    loops did (so event sequence numbers, and with them same-instant
    tie-breaking, are unchanged).  ``clock`` is any
    :class:`~repro.runtime.base.Clock` — the simulator in a trial, the
    asyncio clock live.

    ``start(first_delay=...)`` supports the desynchronised first firings
    the periodic protocols use (OLSR's per-node hello/TC offsets).
    """

    __slots__ = ("_clock", "_interval", "_callback")

    def __init__(self, clock, interval: float, callback) -> None:
        self._clock = clock
        self._interval = interval
        self._callback = callback

    def start(self, first_delay: Optional[float] = None) -> None:
        """Schedule the first tick (default: one full interval from now)."""
        delay = self._interval if first_delay is None else first_delay
        self._clock.schedule_in(delay, self._tick)

    def _tick(self) -> None:
        self._callback(self._clock.now)
        self._clock.schedule_in(self._interval, self._tick)


class ComputationState(enum.Enum):
    """LDR/SRP route-computation states for one ``(source, rreq_id)`` pair."""

    PASSIVE = "passive"
    ENGAGED = "engaged"
    ACTIVE = "active"


@dataclass
class RreqCacheEntry:
    """What a node remembers about one route computation it participates in."""

    source: NodeId
    rreq_id: int
    state: ComputationState
    last_hop: Optional[NodeId] = None
    cached_ordering: Any = None
    replied: bool = False
    created_at: float = 0.0


class RreqCache:
    """The per-node table of route computations, keyed by ``(source, rreq_id)``.

    A node enters each computation at most once (Theorem 7's argument for
    control packets not looping), so :meth:`try_engage` refuses a second entry
    for the same key.
    """

    def __init__(self, *, max_age: float = 60.0) -> None:
        self._entries: Dict[Tuple[NodeId, int], RreqCacheEntry] = {}
        self._max_age = max_age

    def state_of(self, source: NodeId, rreq_id: int) -> ComputationState:
        """Current state for the pair; PASSIVE when never seen."""
        entry = self._entries.get((source, rreq_id))
        return entry.state if entry else ComputationState.PASSIVE

    def get(self, source: NodeId, rreq_id: int) -> Optional[RreqCacheEntry]:
        """The cache entry, or ``None`` when the node is passive for the pair."""
        return self._entries.get((source, rreq_id))

    def activate(self, source: NodeId, rreq_id: int, now: float) -> RreqCacheEntry:
        """Record that this node originated the computation (state ACTIVE)."""
        entry = RreqCacheEntry(
            source, rreq_id, ComputationState.ACTIVE, created_at=now
        )
        self._entries[(source, rreq_id)] = entry
        return entry

    def try_engage(
        self,
        source: NodeId,
        rreq_id: int,
        now: float,
        *,
        last_hop: Optional[NodeId],
        cached_ordering: Any = None,
    ) -> Optional[RreqCacheEntry]:
        """Move PASSIVE -> ENGAGED and return the entry; ``None`` if not passive."""
        if self.state_of(source, rreq_id) is not ComputationState.PASSIVE:
            return None
        entry = RreqCacheEntry(
            source,
            rreq_id,
            ComputationState.ENGAGED,
            last_hop=last_hop,
            cached_ordering=cached_ordering,
            created_at=now,
        )
        self._entries[(source, rreq_id)] = entry
        return entry

    def expire(self, now: float) -> None:
        """Drop entries older than the cache lifetime (DELETE_PERIOD).

        Entries are inserted with ``created_at = now`` and never re-keyed,
        so dict insertion order is creation order and the stale entries are
        exactly a prefix: the scan stops at the first live entry instead of
        walking the whole table once per maintenance tick per node.
        """
        entries = self._entries
        stale = []
        max_age = self._max_age
        for key, entry in entries.items():
            if now - entry.created_at <= max_age:
                break
            stale.append(key)
        for key in stale:
            del entries[key]

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class DiscoveryState:
    """The source-side state of one in-progress route discovery."""

    destination: NodeId
    rreq_id: int
    attempts: int = 1
    timer: Any = None


class DiscoveryController:
    """Runs route-discovery attempts and retries for a source node.

    The caller supplies ``send_request(destination, rreq_id, attempt)`` which
    actually floods the RREQ, and ``give_up(destination)`` which is invoked
    when the final retry times out (the protocol then drops buffered data, as
    Procedure 1 prescribes).
    """

    def __init__(
        self,
        clock,
        *,
        send_request: Callable[[NodeId, int, int], None],
        give_up: Callable[[NodeId], None],
        timeout: float = 1.0,
        max_attempts: int = 3,
    ) -> None:
        self._clock = clock
        self._send_request = send_request
        self._give_up = give_up
        self._timeout = timeout
        self._max_attempts = max_attempts
        self._next_rreq_id = 0
        self._active: Dict[NodeId, DiscoveryState] = {}

    def is_active(self, destination: NodeId) -> bool:
        """True while a discovery for ``destination`` is outstanding."""
        return destination in self._active

    def next_rreq_id(self) -> int:
        """A fresh, node-locally unique RREQ identifier."""
        self._next_rreq_id += 1
        return self._next_rreq_id

    def begin(self, destination: NodeId) -> Optional[DiscoveryState]:
        """Start a discovery unless one is already active (Procedure 1)."""
        if self.is_active(destination):
            return None
        state = DiscoveryState(destination, self.next_rreq_id())
        self._active[destination] = state
        self._send_request(destination, state.rreq_id, state.attempts)
        self._arm_timer(state)
        return state

    def _arm_timer(self, state: DiscoveryState) -> None:
        state.timer = self._clock.schedule_in(
            self._timeout * state.attempts, lambda: self._on_timeout(state)
        )

    def _on_timeout(self, state: DiscoveryState) -> None:
        if state.destination not in self._active:
            return
        if state.attempts >= self._max_attempts:
            del self._active[state.destination]
            self._give_up(state.destination)
            return
        state.attempts += 1
        state.rreq_id = self.next_rreq_id()
        self._send_request(state.destination, state.rreq_id, state.attempts)
        self._arm_timer(state)

    def complete(self, destination: NodeId) -> None:
        """A route was found; cancel the retry timer."""
        state = self._active.pop(destination, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()

    def abandon_all(self) -> None:
        """Drop every outstanding discovery without invoking ``give_up``.

        Used by the fault layer when a node crashes: the in-flight
        computations die with the node (their retry timers are cancelled so
        a rebooted node does not resurrect pre-crash solicitations).
        """
        for state in self._active.values():
            if state.timer is not None:
                state.timer.cancel()
        self._active.clear()
