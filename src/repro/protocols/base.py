"""The routing-protocol interface every protocol in this repository implements.

A protocol instance belongs to exactly one node.  The simulator interacts with
it through four entry points:

* :meth:`RoutingProtocol.start` — called once when the trial starts (proactive
  protocols schedule their periodic advertisements here).
* :meth:`RoutingProtocol.originate_data` — the application wants a data packet
  delivered; the protocol forwards it, queues it while discovering a route, or
  drops it.
* :meth:`RoutingProtocol.handle_packet` — the MAC decoded a packet addressed
  to this node (or a broadcast).
* :meth:`RoutingProtocol.handle_link_failure` — the MAC exhausted retries for
  a unicast to a neighbour; the protocol treats the link as broken (the
  paper's "link-layer unicast loss detection").

The base class also provides the shared helpers all implementations use: a
packet-buffer for data awaiting routes, control-packet constructors and the
per-destination statistics hooks used by Fig. 7 (sequence-number accounting).
"""

from __future__ import annotations

import abc
from collections import defaultdict, deque
from typing import Deque, Dict, Hashable, List, Optional

from ..sim.node import Node
from ..sim.packet import Packet, PacketKind

__all__ = ["RoutingProtocol", "ProtocolConfig", "PacketBuffer"]

NodeId = Hashable


class ProtocolConfig:
    """Base class for protocol configuration objects (plain attribute bags)."""


class PacketBuffer:
    """Data packets waiting for a route, bounded per destination.

    AODV, DSR, LDR and SRP all queue data while route discovery runs; packets
    are dropped when discovery ultimately fails or the buffer overflows.
    """

    def __init__(self, max_per_destination: int = 64) -> None:
        self._max = max_per_destination
        self._buffers: Dict[NodeId, Deque[Packet]] = defaultdict(deque)

    def push(self, packet: Packet) -> bool:
        """Buffer a packet; returns False (and drops it) when full."""
        queue = self._buffers[packet.destination]
        if len(queue) >= self._max:
            return False
        queue.append(packet)
        return True

    def pop_all(self, destination: NodeId) -> List[Packet]:
        """Remove and return every buffered packet for ``destination``."""
        queue = self._buffers.pop(destination, deque())
        return list(queue)

    def drop_all(self, destination: NodeId) -> int:
        """Discard the buffer for ``destination``; returns how many were lost."""
        return len(self._buffers.pop(destination, deque()))

    def pending(self, destination: NodeId) -> int:
        """Number of packets currently waiting for ``destination``."""
        return len(self._buffers.get(destination, ()))


class RoutingProtocol(abc.ABC):
    """Abstract per-node routing protocol."""

    #: Human-readable protocol name used in reports ("SRP", "AODV", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.node: Optional[Node] = None

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, node: Node) -> None:
        """Bind this protocol instance to its node (called by ``Node``)."""
        self.node = node

    def start(self) -> None:
        """Hook called at simulation start; default is a no-op."""

    def finalize(self) -> None:
        """Hook called at simulation end, before statistics are rolled up."""

    def on_node_down(self) -> None:
        """Fault injection: the node crashed (power loss).

        Implementations should forget volatile state — routing tables,
        request caches, buffered data — as a real reboot would, but keep
        durable counters (a node's own sequence number survives in
        non-volatile storage in every protocol modelled here, which keeps
        Fig. 7's metric monotone under churn).  Default: no-op.
        """

    def on_node_up(self) -> None:
        """Fault injection: the node rebooted; re-establish initial state."""

    # -- required behaviour ------------------------------------------------------------

    @abc.abstractmethod
    def originate_data(self, packet: Packet) -> None:
        """Handle an application packet originated at this node."""

    @abc.abstractmethod
    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        """Handle a packet received from a neighbour (data or control)."""

    @abc.abstractmethod
    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        """React to MAC-level unicast failure toward ``next_hop``."""

    # -- statistics hooks --------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """The node's sequence-number growth for Fig. 7 (0 when not applicable).

        Protocols report how far their *own* sequence number advanced beyond
        its initial value, matching the paper's normalisation ("we have
        subtracted one from SRP so all protocols have a base of zero").
        """
        return 0

    # -- helpers for subclasses --------------------------------------------------------

    @property
    def simulator(self):
        """The trial's simulator (valid after :meth:`attach`)."""
        return self.node.simulator

    @property
    def node_id(self) -> NodeId:
        """This node's identifier."""
        return self.node.node_id

    def make_control_packet(
        self, destination: NodeId, payload, size_bytes: int
    ) -> Packet:
        """Build a control packet originating at this node."""
        return Packet(
            kind=PacketKind.CONTROL,
            source=self.node_id,
            destination=destination,
            size_bytes=size_bytes,
            created_at=self.simulator.now,
            payload=payload,
        )

    def deliver_or_forward_hook(self, packet: Packet) -> bool:
        """Deliver ``packet`` locally when this node is its destination.

        Returns True when the packet was consumed here.
        """
        if packet.destination == self.node_id:
            self.node.deliver_data(packet)
            return True
        return False
