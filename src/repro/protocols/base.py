"""The routing-protocol interface every protocol in this repository implements.

A protocol instance belongs to exactly one node.  Its runtime — the simulated
``Node`` or a live router daemon — interacts with it through four entry
points:

* :meth:`RoutingProtocol.start` — called once when the trial starts (proactive
  protocols schedule their periodic advertisements here).
* :meth:`RoutingProtocol.originate_data` — the application wants a data packet
  delivered; the protocol forwards it, queues it while discovering a route, or
  drops it.
* :meth:`RoutingProtocol.handle_packet` — the link layer decoded a packet
  addressed to this node (or a broadcast).
* :meth:`RoutingProtocol.handle_link_failure` — the link layer exhausted
  retries for a unicast to a neighbour; the protocol treats the link as broken
  (the paper's "link-layer unicast loss detection").  Transports without
  delivery feedback (UDP) simply never call it.

Protocols see their environment only through the
:class:`~repro.runtime.base.Runtime` seam (clock, sends, identity, RNG), so
the same classes run inside the discrete-event simulator and as live asyncio
daemons.  The base class also provides the shared helpers all implementations
use: a packet-buffer for data awaiting routes, control-packet constructors
and the per-destination statistics hooks used by Fig. 7 (sequence-number
accounting).
"""

from __future__ import annotations

import abc
from collections import defaultdict, deque
from dataclasses import fields, is_dataclass
from typing import Any, Deque, Dict, Hashable, List, Mapping, Optional

from ..runtime.base import Clock, Runtime
from ..sim.packet import Packet, PacketKind

__all__ = ["RoutingProtocol", "ProtocolConfig", "PacketBuffer"]

NodeId = Hashable


class ProtocolConfig:
    """Base class for protocol configuration dataclasses.

    Every concrete config is a frozen dataclass of JSON-safe scalar fields;
    the round-trip here mirrors :meth:`Scenario.to_dict`'s contract so
    protocol parameters can enter sweep content keys and live-run configs
    identically.
    """

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of every config field."""
        if not is_dataclass(self):
            raise TypeError(
                f"{type(self).__name__} is not a dataclass; protocol configs "
                "must be frozen dataclasses of JSON-safe fields"
            )
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolConfig":
        """Rebuild a config written by :meth:`to_dict`.

        Unknown keys are an error — a mistyped parameter silently falling
        back to its default would corrupt a sweep's content keys.
        """
        if not is_dataclass(cls):
            raise TypeError(f"{cls.__name__} is not a dataclass")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


class PacketBuffer:
    """Data packets waiting for a route, bounded per destination.

    AODV, DSR, LDR and SRP all queue data while route discovery runs; packets
    are dropped when discovery ultimately fails or the buffer overflows.
    """

    def __init__(self, max_per_destination: int = 64) -> None:
        self._max = max_per_destination
        self._buffers: Dict[NodeId, Deque[Packet]] = defaultdict(deque)

    def push(self, packet: Packet) -> bool:
        """Buffer a packet; returns False (and drops it) when full."""
        queue = self._buffers[packet.destination]
        if len(queue) >= self._max:
            return False
        queue.append(packet)
        return True

    def pop_all(self, destination: NodeId) -> List[Packet]:
        """Remove and return every buffered packet for ``destination``."""
        queue = self._buffers.pop(destination, deque())
        return list(queue)

    def drop_all(self, destination: NodeId) -> int:
        """Discard the buffer for ``destination``; returns how many were lost."""
        return len(self._buffers.pop(destination, deque()))

    def pending(self, destination: NodeId) -> int:
        """Number of packets currently waiting for ``destination``."""
        return len(self._buffers.get(destination, ()))


class RoutingProtocol(abc.ABC):
    """Abstract per-node routing protocol."""

    #: Human-readable protocol name used in reports ("SRP", "AODV", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.node: Optional[Runtime] = None

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, node: Runtime) -> None:
        """Bind this protocol instance to its runtime (sim node or live router)."""
        self.node = node

    def start(self) -> None:
        """Hook called at simulation start; default is a no-op."""

    def finalize(self) -> None:
        """Hook called at simulation end, before statistics are rolled up."""

    def on_node_down(self) -> None:
        """Fault injection: the node crashed (power loss).

        Implementations should forget volatile state — routing tables,
        request caches, buffered data — as a real reboot would, but keep
        durable counters (a node's own sequence number survives in
        non-volatile storage in every protocol modelled here, which keeps
        Fig. 7's metric monotone under churn).  Default: no-op.
        """

    def on_node_up(self) -> None:
        """Fault injection: the node rebooted; re-establish initial state."""

    # -- required behaviour ------------------------------------------------------------

    @abc.abstractmethod
    def originate_data(self, packet: Packet) -> None:
        """Handle an application packet originated at this node."""

    @abc.abstractmethod
    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        """Handle a packet received from a neighbour (data or control)."""

    @abc.abstractmethod
    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        """React to MAC-level unicast failure toward ``next_hop``."""

    # -- statistics hooks --------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """The node's sequence-number growth for Fig. 7 (0 when not applicable).

        Protocols report how far their *own* sequence number advanced beyond
        its initial value, matching the paper's normalisation ("we have
        subtracted one from SRP so all protocols have a base of zero").
        """
        return 0

    # -- helpers for subclasses --------------------------------------------------------

    @property
    def clock(self) -> Clock:
        """The runtime's clock (valid after :meth:`attach`).

        Inside a trial this is the :class:`~repro.sim.engine.Simulator`
        itself; live it is the asyncio-backed clock.  Either way ``now`` and
        the ``schedule_*`` calls behave identically from the protocol's side.
        """
        return self.node.clock

    @property
    def simulator(self) -> Clock:
        """Backward-compatible alias for :attr:`clock`."""
        return self.node.clock

    @property
    def node_id(self) -> NodeId:
        """This node's identifier."""
        return self.node.node_id

    def make_control_packet(
        self, destination: NodeId, payload, size_bytes: int
    ) -> Packet:
        """Build a control packet originating at this node."""
        return Packet(
            kind=PacketKind.CONTROL,
            source=self.node_id,
            destination=destination,
            size_bytes=size_bytes,
            created_at=self.node.clock.now,
            payload=payload,
        )

    def deliver_or_forward_hook(self, packet: Packet) -> bool:
        """Deliver ``packet`` locally when this node is its destination.

        Returns True when the packet was consumed here.
        """
        if packet.destination == self.node_id:
            self.node.deliver_data(packet)
            return True
        return False
