"""OLSR — Optimized Link State Routing (proactive baseline).

OLSR (Clausen et al.) is the one pro-active protocol in the paper's
comparison: every node periodically broadcasts HELLO messages to discover its
neighbours and periodically floods topology-control (TC) messages describing
those adjacencies, so every node can run shortest-path over the learned graph
and always has a route ready.  The consequences the paper measures are exactly
the ones this implementation reproduces: high, constant control overhead
(Fig. 5), very low data latency because no discovery delay exists (Fig. 6),
and a delivery ratio that suffers when topology information goes stale under
mobility (Fig. 4).  OLSR is not loop-free at every instant.

Simplifications relative to RFC 3626: no multipoint-relay (MPR) selection —
every node relays TC floods, which *overstates* OLSR's overhead slightly but
keeps its qualitative position (highest overhead class) intact; link holding
times and message intervals follow the RFC defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES, PeriodicTimer

__all__ = ["OlsrConfig", "OlsrProtocol", "OlsrHello", "OlsrTc"]

NodeId = Hashable

_NEVER = float("inf")


@dataclass(frozen=True, slots=True)
class OlsrHello:
    """One-hop broadcast advertising the sender's current neighbour set."""

    origin: NodeId
    neighbors: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class OlsrTc:
    """Topology-control message flooded network-wide."""

    origin: NodeId
    sequence_number: int
    advertised_neighbors: Tuple[NodeId, ...]
    ttl: int = 64


@dataclass(frozen=True, slots=True)
class OlsrConfig(ProtocolConfig):
    """OLSR intervals and holding times (RFC 3626 defaults).

    ``incremental_routes`` (default on) makes the periodic shortest-path
    recomputation run only when the inputs could have changed: the tick
    skips the BFS while no neighbour or topology entry was added, revived
    or replaced with a different adjacency set (dirty flag) and no entry
    that fed the last computation can have expired yet (validity horizon).
    Exact: a skipped recomputation would have rebuilt the identical table,
    so the routing behaviour — and the whole trial — is bit-identical
    either way.  Route recomputation was the dominant control-plane cost of
    an OLSR trial (every node re-ran shortest paths every second of
    simulated time, changed or not).
    """

    hello_interval: float = 2.0
    tc_interval: float = 5.0
    neighbor_hold_time: float = 6.0
    topology_hold_time: float = 15.0
    route_recompute_interval: float = 1.0
    incremental_routes: bool = True


class OlsrProtocol(RoutingProtocol):
    """One node's OLSR instance."""

    name = "OLSR"

    def __init__(self, config: Optional[OlsrConfig] = None) -> None:
        super().__init__()
        self.config = config or OlsrConfig()
        #: neighbour -> expiry time
        self.neighbors: Dict[NodeId, float] = {}
        #: originator -> (advertised neighbour set, expiry, sequence number)
        self.topology: Dict[NodeId, Tuple[Set[NodeId], float, int]] = {}
        self.routing_table: Dict[NodeId, NodeId] = {}
        self.tc_sequence_number = 0
        self.seen_tcs: Set[Tuple[NodeId, int]] = set()
        self.data_drops = 0
        # Incremental-recompute bookkeeping: the table must be rebuilt when
        # something was added/revived/replaced (dirty) or once an entry that
        # fed the last rebuild actually expires.  `_routes_valid_until` is
        # the earliest such expiry *as of the last rebuild* — entries
        # refreshed since then push the true horizon later, which the route
        # tick revalidates with a cheap expiry scan before paying for a
        # shortest-path run.
        self._routes_dirty = True
        self._routes_valid_until = -_NEVER
        self._routes_computed_at = -_NEVER

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        # Desynchronise periodic emissions across nodes with a per-node offset.
        offset = (hash(self.node_id) % 1000) / 1000.0
        config = self.config
        PeriodicTimer(
            self.clock, config.hello_interval, self._emit_hello
        ).start(first_delay=offset * config.hello_interval)
        PeriodicTimer(self.clock, config.tc_interval, self._emit_tc).start(
            first_delay=offset * config.tc_interval
        )
        PeriodicTimer(
            self.clock, config.route_recompute_interval, self._route_maintenance
        ).start()

    def _emit_hello(self, now: float) -> None:
        hello = OlsrHello(
            origin=self.node_id, neighbors=tuple(self._live_neighbors())
        )
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, hello, CONTROL_SIZES["hello"])
        )

    def _emit_tc(self, now: float) -> None:
        self.tc_sequence_number += 1
        tc = OlsrTc(
            origin=self.node_id,
            sequence_number=self.tc_sequence_number,
            advertised_neighbors=tuple(self._live_neighbors()),
        )
        self.seen_tcs.add((self.node_id, self.tc_sequence_number))
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, tc, CONTROL_SIZES["tc"])
        )

    def on_node_down(self) -> None:
        """Crash: all link-state knowledge is volatile.

        The TC sequence number is kept monotone across the reboot so
        neighbours' ``seen_tcs`` dedup state never silently discards the
        rebooted node's fresh topology advertisements.
        """
        self.neighbors.clear()
        self.topology.clear()
        self.routing_table.clear()
        self.seen_tcs.clear()
        self._routes_dirty = True
        self._routes_valid_until = -_NEVER
        self._routes_computed_at = -_NEVER

    def _route_maintenance(self, now: float) -> None:
        if not self.config.incremental_routes or self._routes_dirty:
            self._recompute_routes()
            return
        if now < self._routes_valid_until:
            return
        # The recorded horizon passed, but entries refreshed since the last
        # rebuild may have pushed the true horizon later.  An entry only
        # invalidates the table if it *died* since the rebuild — expiry
        # inside (computed_at, now].  Scanning the expiries is an order of
        # magnitude cheaper than the shortest-path rebuild it avoids.
        computed_at = self._routes_computed_at
        horizon = _NEVER
        for expiry in self.neighbors.values():
            if expiry <= now:
                if expiry > computed_at:
                    self._recompute_routes()
                    return
            elif expiry < horizon:
                horizon = expiry
        for _, expiry, _ in self.topology.values():
            if expiry <= now:
                if expiry > computed_at:
                    self._recompute_routes()
                    return
            elif expiry < horizon:
                horizon = expiry
        self._routes_valid_until = horizon

    # -- neighbour / topology state ----------------------------------------------------

    def _live_neighbors(self) -> Set[NodeId]:
        now = self.clock.now
        return {n for n, expiry in self.neighbors.items() if expiry > now}

    def _live_topology(self) -> Dict[NodeId, Set[NodeId]]:
        now = self.clock.now
        return {
            origin: neighbors
            for origin, (neighbors, expiry, _) in self.topology.items()
            if expiry > now
        }

    # -- routing -----------------------------------------------------------------------

    def _recompute_routes(self) -> None:
        """Breadth-first shortest paths over the learned topology.

        ``_live_neighbors`` is evaluated once and reused: a comprehension
        over the same dict state yields the identical set (and identical
        iteration order) every time, so sharing one evaluation across the
        adjacency seed, the reverse-edge pass and the initial frontier
        changes nothing but the cost.
        """
        now = self.clock.now
        live_neighbors = self._live_neighbors()
        adjacency: Dict[NodeId, Set[NodeId]] = {self.node_id: set(live_neighbors)}
        adjacency_setdefault = adjacency.setdefault
        for origin, (neighbors, expiry, _) in self.topology.items():
            if expiry <= now:
                continue
            adjacency_setdefault(origin, set()).update(neighbors)
            for neighbor in neighbors:
                adjacency_setdefault(neighbor, set()).add(origin)
        for neighbor in live_neighbors:
            adjacency_setdefault(neighbor, set()).add(self.node_id)

        table: Dict[NodeId, NodeId] = {}
        # First hop for each neighbour is the neighbour itself.
        frontier = list(live_neighbors)
        for neighbor in frontier:
            table[neighbor] = neighbor
        visited = set(frontier)
        visited.add(self.node_id)
        adjacency_get = adjacency.get
        visited_add = visited.add
        while frontier:
            next_frontier = []
            append = next_frontier.append
            for node in frontier:
                first_hop = table[node]
                for neighbor in adjacency_get(node, ()):
                    if neighbor in visited:
                        continue
                    visited_add(neighbor)
                    table[neighbor] = first_hop
                    append(neighbor)
            frontier = next_frontier
        self.routing_table = table
        if self.config.incremental_routes:
            # The table stays exact until the first live entry can expire —
            # or until a dirty-marking update lands, whichever comes first.
            now = self.clock.now
            valid_until = _NEVER
            for expiry in self.neighbors.values():
                if now < expiry < valid_until:
                    valid_until = expiry
            for _, expiry, _ in self.topology.values():
                if now < expiry < valid_until:
                    valid_until = expiry
            self._routes_valid_until = valid_until
            self._routes_computed_at = now
            self._routes_dirty = False

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """The current first hop toward ``destination``, if reachable."""
        return self.routing_table.get(destination)

    # -- application data --------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        if next_hop is None:
            # Proactive protocol: no discovery to fall back on.
            self.data_drops += 1
            return
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, OlsrHello):
            self._handle_hello(payload)
        elif isinstance(payload, OlsrTc):
            self._handle_tc(payload, packet)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        # Split horizon: with stale link-state information the next hop can
        # point straight back at the sender; forwarding would ping-pong the
        # packet (OLSR is not loop-free at every instant), so drop instead.
        if next_hop is None or next_hop == from_node or packet.hops > 32:
            self.data_drops += 1
            return
        self.node.send_unicast(packet.copy_for_forwarding(), next_hop)

    def _handle_hello(self, hello: OlsrHello) -> None:
        now = self.clock.now
        previous = self.neighbors.get(hello.origin)
        if previous is None or previous <= now:
            # An unknown or expired neighbour became live: the next route
            # tick must rebuild.  A refresh of an already-live neighbour
            # only pushes its expiry later, which cannot invalidate the
            # table before the recorded validity horizon.
            self._routes_dirty = True
        self.neighbors[hello.origin] = now + self.config.neighbor_hold_time

    def _handle_tc(self, tc: OlsrTc, packet: Packet) -> None:
        key = (tc.origin, tc.sequence_number)
        if key in self.seen_tcs or tc.origin == self.node_id or tc.ttl <= 0:
            return
        self.seen_tcs.add(key)
        existing = self.topology.get(tc.origin)
        if existing is None or tc.sequence_number >= existing[2]:
            now = self.clock.now
            advertised = set(tc.advertised_neighbors)
            changed = (
                existing is None
                or existing[1] <= now
                or advertised != existing[0]
            )
            if changed:
                # New origin, revived origin, or a different adjacency set:
                # the learned graph changed.  A same-set refresh of a live
                # entry only extends its expiry.
                self._routes_dirty = True
            self.topology[tc.origin] = (
                advertised,
                now + self.config.topology_hold_time,
                tc.sequence_number,
            )
        # Flood on (no MPR optimisation).
        relayed = OlsrTc(
            origin=tc.origin,
            sequence_number=tc.sequence_number,
            advertised_neighbors=tc.advertised_neighbors,
            ttl=tc.ttl - 1,
        )
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, relayed, CONTROL_SIZES["tc"])
        )

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        self.neighbors.pop(next_hop, None)
        self._routes_dirty = True
        self._recompute_routes()
        if packet.is_data:
            alternative = self.next_hop(packet.destination)
            if alternative is not None and alternative != next_hop:
                self.node.send_unicast(packet, alternative)
            else:
                self.data_drops += 1

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """OLSR is not part of Fig. 7's sequence-number comparison."""
        return 0
