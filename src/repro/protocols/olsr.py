"""OLSR — Optimized Link State Routing (proactive baseline).

OLSR (Clausen et al.) is the one pro-active protocol in the paper's
comparison: every node periodically broadcasts HELLO messages to discover its
neighbours and periodically floods topology-control (TC) messages describing
those adjacencies, so every node can run shortest-path over the learned graph
and always has a route ready.  The consequences the paper measures are exactly
the ones this implementation reproduces: high, constant control overhead
(Fig. 5), very low data latency because no discovery delay exists (Fig. 6),
and a delivery ratio that suffers when topology information goes stale under
mobility (Fig. 4).  OLSR is not loop-free at every instant.

Simplifications relative to RFC 3626: no multipoint-relay (MPR) selection —
every node relays TC floods, which *overstates* OLSR's overhead slightly but
keeps its qualitative position (highest overhead class) intact; link holding
times and message intervals follow the RFC defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

from ..sim.packet import Packet
from .base import ProtocolConfig, RoutingProtocol
from .common import CONTROL_SIZES

__all__ = ["OlsrConfig", "OlsrProtocol", "OlsrHello", "OlsrTc"]

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class OlsrHello:
    """One-hop broadcast advertising the sender's current neighbour set."""

    origin: NodeId
    neighbors: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class OlsrTc:
    """Topology-control message flooded network-wide."""

    origin: NodeId
    sequence_number: int
    advertised_neighbors: Tuple[NodeId, ...]
    ttl: int = 64


@dataclass(frozen=True, slots=True)
class OlsrConfig(ProtocolConfig):
    """OLSR intervals and holding times (RFC 3626 defaults)."""

    hello_interval: float = 2.0
    tc_interval: float = 5.0
    neighbor_hold_time: float = 6.0
    topology_hold_time: float = 15.0
    route_recompute_interval: float = 1.0


class OlsrProtocol(RoutingProtocol):
    """One node's OLSR instance."""

    name = "OLSR"

    def __init__(self, config: Optional[OlsrConfig] = None) -> None:
        super().__init__()
        self.config = config or OlsrConfig()
        #: neighbour -> expiry time
        self.neighbors: Dict[NodeId, float] = {}
        #: originator -> (advertised neighbour set, expiry, sequence number)
        self.topology: Dict[NodeId, Tuple[Set[NodeId], float, int]] = {}
        self.routing_table: Dict[NodeId, NodeId] = {}
        self.tc_sequence_number = 0
        self.seen_tcs: Set[Tuple[NodeId, int]] = set()
        self.data_drops = 0

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        # Desynchronise periodic emissions across nodes with a per-node offset.
        offset = (hash(self.node_id) % 1000) / 1000.0
        self.simulator.schedule_in(
            offset * self.config.hello_interval, self._hello_tick
        )
        self.simulator.schedule_in(offset * self.config.tc_interval, self._tc_tick)
        self.simulator.schedule_in(
            self.config.route_recompute_interval, self._route_tick
        )

    def _hello_tick(self) -> None:
        hello = OlsrHello(
            origin=self.node_id, neighbors=tuple(self._live_neighbors())
        )
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, hello, CONTROL_SIZES["hello"])
        )
        self.simulator.schedule_in(self.config.hello_interval, self._hello_tick)

    def _tc_tick(self) -> None:
        self.tc_sequence_number += 1
        tc = OlsrTc(
            origin=self.node_id,
            sequence_number=self.tc_sequence_number,
            advertised_neighbors=tuple(self._live_neighbors()),
        )
        self.seen_tcs.add((self.node_id, self.tc_sequence_number))
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, tc, CONTROL_SIZES["tc"])
        )
        self.simulator.schedule_in(self.config.tc_interval, self._tc_tick)

    def _route_tick(self) -> None:
        self._recompute_routes()
        self.simulator.schedule_in(
            self.config.route_recompute_interval, self._route_tick
        )

    # -- neighbour / topology state ----------------------------------------------------

    def _live_neighbors(self) -> Set[NodeId]:
        now = self.simulator.now
        return {n for n, expiry in self.neighbors.items() if expiry > now}

    def _live_topology(self) -> Dict[NodeId, Set[NodeId]]:
        now = self.simulator.now
        return {
            origin: neighbors
            for origin, (neighbors, expiry, _) in self.topology.items()
            if expiry > now
        }

    # -- routing -----------------------------------------------------------------------

    def _recompute_routes(self) -> None:
        """Breadth-first shortest paths over the learned topology."""
        adjacency: Dict[NodeId, Set[NodeId]] = {self.node_id: self._live_neighbors()}
        for origin, neighbors in self._live_topology().items():
            adjacency.setdefault(origin, set()).update(neighbors)
            for neighbor in neighbors:
                adjacency.setdefault(neighbor, set()).add(origin)
        for neighbor in self._live_neighbors():
            adjacency.setdefault(neighbor, set()).add(self.node_id)

        table: Dict[NodeId, NodeId] = {}
        # First hop for each neighbour is the neighbour itself.
        frontier = list(self._live_neighbors())
        for neighbor in frontier:
            table[neighbor] = neighbor
        visited = set(frontier) | {self.node_id}
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency.get(node, ()):
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    table[neighbor] = table[node]
                    next_frontier.append(neighbor)
            frontier = next_frontier
        self.routing_table = table

    def next_hop(self, destination: NodeId) -> Optional[NodeId]:
        """The current first hop toward ``destination``, if reachable."""
        return self.routing_table.get(destination)

    # -- application data --------------------------------------------------------------

    def originate_data(self, packet: Packet) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        if next_hop is None:
            # Proactive protocol: no discovery to fall back on.
            self.data_drops += 1
            return
        self.node.send_unicast(packet, next_hop)

    # -- MAC callbacks -----------------------------------------------------------------

    def handle_packet(self, packet: Packet, from_node: NodeId) -> None:
        if packet.is_data:
            self._handle_data(packet, from_node)
            return
        payload = packet.payload
        if isinstance(payload, OlsrHello):
            self._handle_hello(payload)
        elif isinstance(payload, OlsrTc):
            self._handle_tc(payload, packet)

    def _handle_data(self, packet: Packet, from_node: NodeId) -> None:
        if self.deliver_or_forward_hook(packet):
            return
        next_hop = self.next_hop(packet.destination)
        # Split horizon: with stale link-state information the next hop can
        # point straight back at the sender; forwarding would ping-pong the
        # packet (OLSR is not loop-free at every instant), so drop instead.
        if next_hop is None or next_hop == from_node or packet.hops > 32:
            self.data_drops += 1
            return
        self.node.send_unicast(packet.copy_for_forwarding(), next_hop)

    def _handle_hello(self, hello: OlsrHello) -> None:
        self.neighbors[hello.origin] = (
            self.simulator.now + self.config.neighbor_hold_time
        )

    def _handle_tc(self, tc: OlsrTc, packet: Packet) -> None:
        key = (tc.origin, tc.sequence_number)
        if key in self.seen_tcs or tc.origin == self.node_id or tc.ttl <= 0:
            return
        self.seen_tcs.add(key)
        existing = self.topology.get(tc.origin)
        if existing is None or tc.sequence_number >= existing[2]:
            self.topology[tc.origin] = (
                set(tc.advertised_neighbors),
                self.simulator.now + self.config.topology_hold_time,
                tc.sequence_number,
            )
        # Flood on (no MPR optimisation).
        relayed = OlsrTc(
            origin=tc.origin,
            sequence_number=tc.sequence_number,
            advertised_neighbors=tc.advertised_neighbors,
            ttl=tc.ttl - 1,
        )
        self.node.send_broadcast(
            self.make_control_packet(self.node_id, relayed, CONTROL_SIZES["tc"])
        )

    def handle_link_failure(self, packet: Packet, next_hop: NodeId) -> None:
        self.neighbors.pop(next_hop, None)
        self._recompute_routes()
        if packet.is_data:
            alternative = self.next_hop(packet.destination)
            if alternative is not None and alternative != next_hop:
                self.node.send_unicast(packet, alternative)
            else:
                self.data_drops += 1

    # -- metrics -----------------------------------------------------------------------

    def sequence_number_metric(self) -> int:
        """OLSR is not part of Fig. 7's sequence-number comparison."""
        return 0
