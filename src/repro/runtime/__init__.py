"""Execution runtimes for the routing protocols.

``repro.runtime.base`` defines the seam (:class:`Clock`, :class:`Runtime`)
that both the discrete-event simulator and the live asyncio daemons
implement; ``repro.runtime.live`` is the live implementation (UDP and
in-process loopback transports plus the soak harness).

Only the seam is imported here: ``repro.protocols`` depends on this package
at import time, and the live module depends on ``repro.protocols`` in turn,
so eagerly importing ``live`` would create an import cycle.
"""

from .base import Clock, Runtime, TimerHandle

__all__ = ["Clock", "Runtime", "TimerHandle"]
