"""The Runtime seam: the execution environment a routing protocol needs.

Every protocol in this repository speaks packets and timers — nothing else.
This module pins that dependency surface down as two small interfaces so the
*same* protocol classes run unchanged in two very different worlds:

* inside the discrete-event :class:`~repro.sim.engine.Simulator` (the
  ``Node``/``Mac``/``Channel`` stack, bit-exact and paper-faithful), and
* as real asyncio router daemons over UDP or an in-process loopback
  transport (:mod:`repro.runtime.live`), against wall-clock timers.

The interfaces:

:class:`Clock`
    ``now`` plus cancellable ``schedule_in``/``schedule_at``.  The sim's
    :class:`~repro.sim.engine.Simulator` already satisfies it verbatim (it
    *is* the sim clock); the live runtime implements it over the asyncio
    event loop.  ``priority`` orders same-instant callbacks in the sim and
    is advisory (ignored) live, where simultaneity has no exact meaning.

:class:`Runtime`
    The per-node half: identity, the clock, the transport sends, local
    delivery and a deterministic per-node RNG stream.  The sim's
    :class:`~repro.sim.node.Node` and the live
    :class:`~repro.runtime.live.LiveNode` both implement it.

This module must stay importable without the simulator: the CI import-
hygiene check (``tests/test_import_hygiene.py``) asserts that nothing under
``repro.protocols`` or ``repro.runtime`` imports a sim-only module at
runtime.  (``repro.sim.packet`` and ``repro.sim.stats`` are runtime-agnostic
data models that happen to live under ``sim/`` and are explicitly allowed.)
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Hashable, Optional, Protocol, runtime_checkable

from ..sim.packet import Packet

__all__ = ["Clock", "Runtime", "TimerHandle"]

NodeId = Hashable


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled before it fires."""

    def cancel(self) -> None:  # pragma: no cover - structural protocol
        ...


@runtime_checkable
class Clock(Protocol):
    """What protocols may assume about time, wherever they run.

    ``now`` is the current time in seconds (simulated time in a trial,
    scaled wall-clock time live).  The scheduling calls return a
    :class:`TimerHandle`; ``priority`` breaks same-instant ties in the
    deterministic simulator and is advisory elsewhere.
    """

    now: float

    def schedule_in(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> TimerHandle:  # pragma: no cover - structural protocol
        ...

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> TimerHandle:  # pragma: no cover - structural protocol
        ...


class Runtime(abc.ABC):
    """The per-node execution environment a :class:`RoutingProtocol` binds to.

    Implementations own the transport (a simulated MAC + channel, or a UDP /
    loopback socket), the node's statistics sinks and its RNG streams; the
    protocol only ever sees this surface.  The sim's ``Node`` and the live
    ``LiveNode`` are the two implementations.
    """

    #: This node's identifier (stable, hashable, unique in the network).
    node_id: NodeId

    #: The time source and timer scheduler for this node.
    clock: Clock

    @abc.abstractmethod
    def send_unicast(self, packet: Packet, next_hop: NodeId) -> None:
        """Transmit ``packet`` to a specific neighbour.

        In the sim this goes through the MAC with retries and link-failure
        detection; live it is a fire-and-forget datagram.
        """

    @abc.abstractmethod
    def send_broadcast(self, packet: Packet) -> None:
        """Transmit ``packet`` to every neighbour in range (no retries)."""

    @abc.abstractmethod
    def deliver_data(self, packet: Packet) -> None:
        """Record the local delivery of an application data packet."""

    def rng(self, name: str = "protocol") -> random.Random:
        """A deterministic per-node random stream.

        Streams are derived from the trial/run seed and ``(name, node_id)``,
        so two runtimes configured with the same seed expose identical
        streams to their protocols.  Runtimes that were not given RNG
        streams raise — no protocol in the repository draws randomness yet,
        and a silent nondeterministic fallback would be worse than an error.
        """
        raise NotImplementedError(
            f"runtime for node {self.node_id!r} was built without RNG streams"
        )
