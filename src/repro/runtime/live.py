"""The live runtime: routing protocols as real asyncio router daemons.

The same :class:`~repro.protocols.base.RoutingProtocol` classes that run
inside the discrete-event simulator run here unchanged, against wall-clock
asyncio timers and a real transport.  Two transports are provided:

``loopback``
    Every router lives in one process on one event loop; "datagrams" are
    asyncio timer callbacks with a configurable per-hop latency.  No
    sockets, no scheduling noise beyond the event loop's — the deterministic
    choice for CI soaks and the sim-vs-live parity tests.

``udp``
    Every router is its own OS process running its own event loop and UDP
    socket (``repro-experiments live --transport udp`` launches N of them).
    Radio range is emulated by a sender-side adjacency filter, latency by
    the kernel's loopback path, and cross-process latency measurement by a
    shared wall-clock epoch all routers align their clocks to.

Flood control lives in the runtime, below the protocols, exactly as in the
SNIPPETS exemplars: every broadcast reception is deduplicated on a
``(source, uid)`` message id held in an :class:`ExpiringSet`, and every
transmission carries a hop budget (TTL).  The counters distinguish routine
*drops* (a duplicate or an exhausted TTL — normal flood behaviour) from
*violations* (a duplicate that slipped past an expired dedup entry, or a
received packet whose hop count exceeds what any conforming sender could
have transmitted).  Violations are structurally zero in a correct run; the
CI live-smoke soak asserts exactly that.

Time is *scaled*: ``time_scale`` is wall seconds per protocol second, so a
40-protocol-second soak runs in 2 wall seconds at ``time_scale=0.05`` while
every protocol still sees its configured hello/LSA intervals.  Protocols
read time only through the :class:`~repro.runtime.base.Clock` seam, so they
cannot tell the difference.

Import discipline: this module may import the runtime seam, the protocol
registry and the runtime-agnostic data models (``repro.sim.packet``,
``repro.sim.stats``, ``repro.sim.rng``) — never the simulator's engine,
node, MAC or channel.  ``tests/test_import_hygiene.py`` enforces this.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import pickle
import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..protocols import protocol_factory
from ..sim.packet import Packet, PacketKind
from ..sim.rng import RngStreams, derive_seed
from ..sim.stats import TrialStats, TrialSummary
from .base import Runtime, TimerHandle

__all__ = [
    "LiveClock",
    "ExpiringSet",
    "LiveCounters",
    "LiveNode",
    "LoopbackHub",
    "UdpTransport",
    "CbrFlow",
    "plan_flows",
    "topology_positions",
    "adjacency_from_positions",
    "LiveRunConfig",
    "LiveRunReport",
    "LoopbackNetwork",
    "run_soak",
    "TOPOLOGIES",
    "TRANSPORTS",
]

NodeId = Hashable

TOPOLOGIES = ("line", "ring", "grid", "random")
TRANSPORTS = ("loopback", "udp")


# ---------------------------------------------------------------------------
# Clock


class LiveClock:
    """The :class:`~repro.runtime.base.Clock` over an asyncio event loop.

    ``now`` is *protocol time*: scaled seconds since the epoch.  Timers map
    onto ``loop.call_later`` (whose handles already satisfy
    :class:`~repro.runtime.base.TimerHandle`); the sim-only ``priority``
    argument is accepted and ignored — wall-clock simultaneity has no exact
    meaning, which is precisely why the protocols treat it as advisory.
    """

    __slots__ = ("_loop", "_scale", "_epoch")

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        time_scale: float = 1.0,
        epoch: Optional[float] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._loop = loop
        self._scale = time_scale
        self._epoch = loop.time() if epoch is None else epoch

    @classmethod
    def from_wall_epoch(
        cls,
        loop: asyncio.AbstractEventLoop,
        wall_epoch: float,
        *,
        time_scale: float = 1.0,
    ) -> "LiveClock":
        """A clock whose t=0 is a shared ``time.time()`` instant.

        UDP router processes each run their own loop with its own monotonic
        base; aligning every clock to one wall epoch makes ``created_at``
        stamps comparable across processes, so end-to-end latency of a
        packet delivered in another process is meaningful.
        """
        return cls(
            loop,
            time_scale=time_scale,
            epoch=loop.time() - (time.time() - wall_epoch),
        )

    @property
    def time_scale(self) -> float:
        """Wall seconds per protocol second."""
        return self._scale

    @property
    def now(self) -> float:
        """Current protocol time in seconds since the epoch."""
        return (self._loop.time() - self._epoch) / self._scale

    def schedule_in(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> TimerHandle:
        """Run ``callback`` after ``delay`` protocol seconds."""
        return self._loop.call_later(max(delay, 0.0) * self._scale, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> TimerHandle:
        """Run ``callback`` at protocol time ``time`` (immediately if past)."""
        return self.schedule_in(time - self.now, callback)


# ---------------------------------------------------------------------------
# Flood control


class ExpiringSet:
    """Set membership with per-entry expiry, for message-id deduplication.

    ``add`` returns True for a key not currently in the set (and inserts
    it), False for a live duplicate.  Entries expire ``window`` protocol
    seconds after insertion.  Eviction is O(1) amortised: with a constant
    window, insertion order is expiry order, so a deque of ``(expiry, key)``
    pairs drains from the left; a stale pair whose key was re-added after
    expiring is skipped by comparing the recorded expiry.
    """

    __slots__ = ("_clock", "_window", "_expiry", "_order")

    def __init__(self, clock, window: float) -> None:
        if window <= 0:
            raise ValueError("dedup window must be positive")
        self._clock = clock
        self._window = window
        self._expiry: Dict[Any, float] = {}
        self._order: Deque[Tuple[float, Any]] = deque()

    def __len__(self) -> int:
        self._evict(self._clock.now)
        return len(self._expiry)

    def __contains__(self, key: Any) -> bool:
        expiry = self._expiry.get(key)
        return expiry is not None and expiry > self._clock.now

    def add(self, key: Any) -> bool:
        """Insert ``key``; True when it was not already live in the set."""
        now = self._clock.now
        self._evict(now)
        existing = self._expiry.get(key)
        if existing is not None and existing > now:
            return False
        expiry = now + self._window
        self._expiry[key] = expiry
        self._order.append((expiry, key))
        return True

    def _evict(self, now: float) -> None:
        order = self._order
        expiry_map = self._expiry
        while order and order[0][0] <= now:
            expiry, key = order.popleft()
            if expiry_map.get(key) == expiry:
                del expiry_map[key]


# ---------------------------------------------------------------------------
# Counters


@dataclass
class LiveCounters:
    """Per-node runtime counters, split into routine drops and violations.

    ``ttl_drops``/``dedup_drops`` are expected flood-control work.  The two
    violation counters flag flood-control *failures* and must be zero:

    * ``ttl_violations`` — a received packet's hop count exceeds the TTL,
      which no conforming sender can transmit (senders drop after the
      increment), so a nonzero count means a router forwarded past the
      budget;
    * ``dedup_violations`` — a broadcast message id was accepted as new but
      had been seen before the dedup window expired it, i.e. a duplicate
      outlived the ``ExpiringSet`` and slipped through (window too small
      for the network's actual flood latency).
    """

    unicast_sent: int = 0
    broadcast_sent: int = 0
    received: int = 0
    ttl_drops: int = 0
    dedup_drops: int = 0
    ttl_violations: int = 0
    dedup_violations: int = 0
    undeliverable: int = 0

    @property
    def violations(self) -> int:
        """Total flood-control failures (the live gate asserts zero)."""
        return self.ttl_violations + self.dedup_violations

    def merge(self, other: "LiveCounters") -> None:
        """Accumulate another node's counters into this roll-up."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> Dict[str, int]:
        """A JSON-safe dict of every counter."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "LiveCounters":
        """Rebuild counters written by :meth:`to_dict`."""
        return cls(**dict(data))


# ---------------------------------------------------------------------------
# The live node (Runtime implementation)


class LiveNode(Runtime):
    """One live router: the :class:`Runtime` over a live transport.

    Mirrors the sim ``Node``'s statistics discipline exactly — data sent
    recorded at origination, delivery keyed so duplicates are counted not
    double-credited, control transmissions counted per send — so a live
    :class:`TrialSummary` is comparable to a simulated one.  On top it adds
    the transport-level flood control (TTL, broadcast dedup) the simulator
    delegates to its MAC/channel physics.

    Delivery dedup keys on ``(source, uid)`` rather than bare ``uid``
    because UDP routers are separate processes with independent packet-id
    counters: uids collide across processes, (origin, uid) pairs cannot.
    """

    def __init__(
        self,
        node_id: NodeId,
        clock: LiveClock,
        transport: "LiveTransportBase",
        stats: TrialStats,
        *,
        rng_streams: Optional[RngStreams] = None,
        max_ttl: int = 16,
        dedup_window: float = 30.0,
    ) -> None:
        if max_ttl < 1:
            raise ValueError("max_ttl must be at least 1")
        self.node_id = node_id
        self.clock = clock
        self.transport = transport
        self.stats = stats
        self._rng_streams = rng_streams
        self.max_ttl = max_ttl
        self.counters = LiveCounters()
        self._seen = ExpiringSet(clock, dedup_window)
        #: Every broadcast message id ever accepted, for violation auditing.
        #: Unbounded by design: a soak is finite, and trading the audit away
        #: would make ``dedup_violations`` unobservable.
        self._audit: set = set()
        self.protocol = None
        self.closed = False

    # -- wiring -----------------------------------------------------------------------

    def attach_protocol(self, protocol) -> None:
        """Install the routing protocol (same contract as the sim node's)."""
        self.protocol = protocol
        protocol.attach(self)

    def start(self) -> None:
        """Start the routing protocol's timers."""
        if self.protocol is None:
            raise RuntimeError(f"router {self.node_id!r} has no routing protocol")
        self.protocol.start()

    def close(self) -> None:
        """Stop transmitting and receiving (drain phase / shutdown)."""
        self.closed = True

    def rng(self, name: str = "protocol") -> random.Random:
        """Deterministic per-node stream derived from the run seed."""
        if self._rng_streams is None:
            return super().rng(name)
        return self._rng_streams.get(f"{name}:{self.node_id!r}")

    # -- application data path ---------------------------------------------------------

    def originate_data(
        self, destination: NodeId, size_bytes: int, flow_id: Optional[int] = None
    ) -> None:
        """Create one application data packet and hand it to the protocol."""
        if self.protocol is None:
            raise RuntimeError(f"router {self.node_id!r} has no routing protocol")
        if self.closed:
            return
        packet = Packet(
            kind=PacketKind.DATA,
            source=self.node_id,
            destination=destination,
            size_bytes=size_bytes,
            created_at=self.clock.now,
            flow_id=flow_id,
        )
        self.stats.record_data_sent(self.clock.now)
        self.protocol.originate_data(packet)

    def deliver_data(self, packet: Packet) -> None:
        """A data packet reached this router (called by the protocol)."""
        latency = self.clock.now - packet.created_at
        self.stats.record_data_delivered(
            (packet.source, packet.uid), latency, created_at=packet.created_at
        )

    # -- transmission ------------------------------------------------------------------

    def send_unicast(self, packet: Packet, next_hop: NodeId) -> None:
        """Fire-and-forget datagram to one neighbour (no link-layer feedback)."""
        self._send(packet, next_hop)

    def send_broadcast(self, packet: Packet) -> None:
        """Datagram to every neighbour inside radio range."""
        self._send(packet, None)

    def _send(self, packet: Packet, receiver: Optional[NodeId]) -> None:
        if self.closed:
            return
        # Mirror the sim MAC: ``hops`` counts transmissions of this packet.
        packet.hops += 1
        if packet.hops > self.max_ttl:
            self.counters.ttl_drops += 1
            return
        if packet.is_control:
            self.stats.record_control_transmission(self.clock.now)
        if receiver is None:
            self.counters.broadcast_sent += 1
        else:
            self.counters.unicast_sent += 1
        self.transport.send(self.node_id, packet, receiver)

    # -- reception ---------------------------------------------------------------------

    def receive(self, packet: Packet, from_node: NodeId, was_broadcast: bool) -> None:
        """Transport callback: run flood control, then hand to the protocol."""
        if self.closed or self.protocol is None:
            return
        self.counters.received += 1
        if packet.hops > self.max_ttl:
            # No conforming sender transmits past the budget; receiving one
            # means a peer's TTL enforcement failed.
            self.counters.ttl_violations += 1
            return
        if was_broadcast:
            message_id = (packet.source, packet.uid)
            if not self._seen.add(message_id):
                self.counters.dedup_drops += 1
                return
            if message_id in self._audit:
                # The ExpiringSet had already forgotten this id: a duplicate
                # outlived the window.  Still dropped — but as a violation.
                self.counters.dedup_violations += 1
                self.counters.dedup_drops += 1
                return
            self._audit.add(message_id)
        self.protocol.handle_packet(packet, from_node)


class LiveTransportBase:
    """The transport surface a :class:`LiveNode` sends through."""

    def send(
        self, origin: NodeId, packet: Packet, receiver: Optional[NodeId]
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Topology


def topology_positions(
    kind: str,
    count: int,
    *,
    seed: int = 1,
    spacing: float = 1.0,
    radio_range: float = 1.25,
) -> Dict[int, Tuple[float, float]]:
    """Static router positions for a named topology.

    ``random`` draws positions uniformly in a square sized for roughly
    constant density, re-drawing (deterministically, from the seed) until
    the resulting radio graph is connected — a disconnected soak would
    report a delivery floor violation that says nothing about the protocol.
    """
    if count < 2:
        raise ValueError("a live run needs at least two routers")
    if kind == "line":
        return {i: (i * spacing, 0.0) for i in range(count)}
    if kind == "ring":
        radius = spacing / (2.0 * math.sin(math.pi / count))
        return {
            i: (
                radius * math.cos(2.0 * math.pi * i / count),
                radius * math.sin(2.0 * math.pi * i / count),
            )
            for i in range(count)
        }
    if kind == "grid":
        columns = math.ceil(math.sqrt(count))
        return {
            i: ((i % columns) * spacing, (i // columns) * spacing)
            for i in range(count)
        }
    if kind == "random":
        side = math.sqrt(count) * spacing
        for attempt in range(256):
            rng = random.Random(derive_seed(seed, f"live-topology:{attempt}"))
            positions = {
                i: (rng.uniform(0.0, side), rng.uniform(0.0, side))
                for i in range(count)
            }
            if _connected(adjacency_from_positions(positions, radio_range)):
                return positions
        raise ValueError(
            f"no connected random topology for {count} routers with radio "
            f"range {radio_range:g} (side {side:g}); raise the range"
        )
    raise ValueError(f"unknown topology {kind!r}; expected one of {TOPOLOGIES}")


def adjacency_from_positions(
    positions: Mapping[int, Tuple[float, float]], radio_range: float
) -> Dict[int, Tuple[int, ...]]:
    """node -> neighbours within ``radio_range`` (sorted, symmetric)."""
    ids = sorted(positions)
    limit = radio_range * radio_range
    adjacency: Dict[int, Tuple[int, ...]] = {}
    for a in ids:
        ax, ay = positions[a]
        neighbors = []
        for b in ids:
            if b == a:
                continue
            bx, by = positions[b]
            if (ax - bx) ** 2 + (ay - by) ** 2 <= limit:
                neighbors.append(b)
        adjacency[a] = tuple(neighbors)
    return adjacency


def _connected(adjacency: Mapping[int, Sequence[int]]) -> bool:
    ids = list(adjacency)
    if not ids:
        return False
    seen = {ids[0]}
    frontier = [ids[0]]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(ids)


# ---------------------------------------------------------------------------
# Loopback transport


class LoopbackHub(LiveTransportBase):
    """In-process transport: delivery is an asyncio timer on a shared loop.

    Radio range is the static adjacency map; a unicast to a node outside it
    is silently lost (counted in the sender's ``undeliverable``), matching a
    datagram sent beyond radio range.  Each receiver gets its own packet
    copy (sharing uid/hops, via ``copy_for_forwarding``) so routers never
    alias mutable state — the property the UDP transport gets from
    serialization for free.
    """

    def __init__(
        self,
        clock: LiveClock,
        adjacency: Mapping[int, Sequence[int]],
        *,
        hop_latency: float = 0.002,
    ) -> None:
        self._clock = clock
        self._adjacency = adjacency
        self._latency = hop_latency
        self._nodes: Dict[NodeId, LiveNode] = {}

    def register(self, node: LiveNode) -> None:
        """Add a router to the hub (idempotent per node id)."""
        self._nodes[node.node_id] = node

    def send(
        self, origin: NodeId, packet: Packet, receiver: Optional[NodeId]
    ) -> None:
        neighbors = self._adjacency.get(origin, ())
        if receiver is None:
            targets: Sequence[NodeId] = neighbors
            was_broadcast = True
        else:
            if receiver not in neighbors:
                sender = self._nodes.get(origin)
                if sender is not None:
                    sender.counters.undeliverable += 1
                return
            targets = (receiver,)
            was_broadcast = False
        for target in targets:
            node = self._nodes.get(target)
            if node is None:
                continue
            self._clock.schedule_in(
                self._latency,
                partial(
                    node.receive, packet.copy_for_forwarding(), origin, was_broadcast
                ),
            )


# ---------------------------------------------------------------------------
# UDP transport


class _UdpReceiver(asyncio.DatagramProtocol):
    """Datagram callbacks -> the node's receive path."""

    def __init__(self, node: LiveNode) -> None:
        self._node = node

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            origin, was_broadcast, packet = pickle.loads(data)
        except Exception:  # pragma: no cover - corrupt datagram
            return
        self._node.receive(packet, origin, was_broadcast)


class UdpTransport(LiveTransportBase):
    """Real datagrams between router processes on localhost.

    The sender serialises ``(origin, was_broadcast, packet)`` with pickle —
    protocol payloads are plain module-level dataclasses, so the wire format
    needs no per-protocol marshalling code — and applies the same
    sender-side adjacency filter as the loopback hub: radio range on a wire
    that physically reaches everyone.
    """

    def __init__(
        self,
        node_id: NodeId,
        adjacency: Mapping[int, Sequence[int]],
        address_book: Mapping[int, Tuple[str, int]],
    ) -> None:
        self.node_id = node_id
        self._adjacency = adjacency
        self._book = dict(address_book)
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._node: Optional[LiveNode] = None

    async def open(self, node: LiveNode, sock: socket.socket) -> None:
        """Bind the datagram endpoint on an already-bound socket."""
        self._node = node
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpReceiver(node), sock=sock
        )

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def send(
        self, origin: NodeId, packet: Packet, receiver: Optional[NodeId]
    ) -> None:
        if self._transport is None:
            return
        neighbors = self._adjacency.get(origin, ())
        if receiver is None:
            targets: Sequence[NodeId] = neighbors
            was_broadcast = True
        else:
            if receiver not in neighbors:
                if self._node is not None:
                    self._node.counters.undeliverable += 1
                return
            targets = (receiver,)
            was_broadcast = False
        if not targets:
            return
        payload = pickle.dumps(
            (origin, was_broadcast, packet), protocol=pickle.HIGHEST_PROTOCOL
        )
        for target in targets:
            address = self._book.get(target)
            if address is not None:
                self._transport.sendto(payload, address)


# ---------------------------------------------------------------------------
# Traffic


@dataclass(frozen=True, slots=True)
class CbrFlow:
    """One constant-bit-rate flow of the soak workload."""

    flow_id: int
    source: int
    destination: int
    start: float
    end: float


def plan_flows(
    node_ids: Sequence[int],
    *,
    flows: int,
    seed: int,
    warmup: float,
    duration: float,
    drain: float,
) -> List[CbrFlow]:
    """The soak's deterministic CBR flow plan.

    Flows start after ``warmup`` (routing must be allowed to converge — the
    soak measures steady-state forwarding, not cold-start discovery, which
    reactive protocols exercise anyway on each flow's first packet) and end
    ``drain`` seconds before the run does, so in-flight packets can land.
    The plan is a pure function of the seed: every UDP router process
    derives the identical plan and originates only its own flows.
    """
    window_start = warmup
    window_end = duration - drain
    if window_end <= window_start:
        raise ValueError(
            "duration too short: no traffic window between warmup and drain"
        )
    rng = random.Random(derive_seed(seed, "live-traffic"))
    plan: List[CbrFlow] = []
    for flow_id in range(flows):
        source, destination = rng.sample(list(node_ids), 2)
        start = window_start + rng.uniform(0.0, (window_end - window_start) * 0.25)
        plan.append(
            CbrFlow(
                flow_id=flow_id,
                source=source,
                destination=destination,
                start=start,
                end=window_end,
            )
        )
    return plan


def _schedule_flow_packets(
    clock: LiveClock,
    flow: CbrFlow,
    originate: Callable[..., None],
    *,
    rate: float,
    packet_size: int,
) -> int:
    """Schedule every packet of one flow; returns how many were scheduled."""
    count = 0
    t = flow.start
    while t < flow.end:
        clock.schedule_at(
            t, partial(originate, flow.destination, packet_size, flow.flow_id)
        )
        count += 1
        t = flow.start + count / rate
    return count


# ---------------------------------------------------------------------------
# Run configuration and report


@dataclass
class LiveRunConfig:
    """Everything one live soak run depends on (JSON-safe, seed included).

    Durations are protocol seconds; ``time_scale`` maps them to wall time.
    The defaults describe a small but honest soak: five routers in a line,
    three flows, 40 protocol seconds.
    """

    protocol: str = "LSR"
    protocol_config: Optional[Dict[str, Any]] = None
    transport: str = "loopback"
    routers: int = 5
    topology: str = "line"
    duration: float = 40.0
    warmup: float = 12.0
    drain: float = 4.0
    time_scale: float = 1.0
    flows: int = 3
    rate: float = 4.0
    packet_size: int = 512
    seed: int = 1
    spacing: float = 1.0
    radio_range: float = 1.25
    hop_latency: float = 0.002
    max_ttl: int = 16
    dedup_window: float = 30.0
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORTS}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.routers < 2:
            raise ValueError("a live run needs at least two routers")
        if self.flows < 1:
            raise ValueError("a soak needs at least one flow")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (the UDP handshake ships configs this way)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LiveRunConfig":
        """Rebuild a config written by :meth:`to_dict`."""
        return cls(**dict(data))


@dataclass
class LiveRunReport:
    """The outcome of one live soak: sim-comparable summary plus counters."""

    config: LiveRunConfig
    summary: TrialSummary
    counters: LiveCounters
    flows: List[CbrFlow] = field(default_factory=list)

    @property
    def violations(self) -> int:
        """Flood-control failures (dedup + TTL); must be zero."""
        return self.counters.violations

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict for ``live --json`` artifacts."""
        return {
            "config": self.config.to_dict(),
            "summary": self.summary.to_dict(),
            "counters": self.counters.to_dict(),
            "violations": self.violations,
            "flows": [dataclasses.asdict(flow) for flow in self.flows],
        }


# ---------------------------------------------------------------------------
# Loopback soak


class LoopbackNetwork:
    """An assembled single-process live network (build/run split for tests).

    The parity tests build one without traffic, let it converge, and read
    the protocols' routing tables; :func:`run_soak` drives the full soak.
    Must be constructed with an event loop running (``async`` context).
    """

    def __init__(self, config: LiveRunConfig) -> None:
        if config.transport != "loopback":
            raise ValueError("LoopbackNetwork is the loopback transport")
        self.config = config
        loop = asyncio.get_running_loop()
        self.clock = LiveClock(loop, time_scale=config.time_scale)
        self.positions = topology_positions(
            config.topology,
            config.routers,
            seed=config.seed,
            spacing=config.spacing,
            radio_range=config.radio_range,
        )
        self.adjacency = adjacency_from_positions(
            self.positions, config.radio_range
        )
        if not _connected(self.adjacency):
            raise ValueError(
                f"{config.topology} topology with {config.routers} routers is "
                f"not connected at radio range {config.radio_range:g}"
            )
        self.stats = TrialStats()
        self.hub = LoopbackHub(
            self.clock, self.adjacency, hop_latency=config.hop_latency
        )
        rng_streams = RngStreams(config.seed)
        factory = protocol_factory(config.protocol, config.protocol_config)
        self.nodes: Dict[int, LiveNode] = {}
        for node_id in sorted(self.positions):
            node = LiveNode(
                node_id,
                self.clock,
                self.hub,
                self.stats,
                rng_streams=rng_streams,
                max_ttl=config.max_ttl,
                dedup_window=config.dedup_window,
            )
            node.attach_protocol(factory(node_id))
            self.hub.register(node)
            self.nodes[node_id] = node

    def start(self) -> None:
        """Start every router's protocol."""
        for node in self.nodes.values():
            node.start()

    def schedule_traffic(self) -> List[CbrFlow]:
        """Plan the CBR flows and schedule every packet origination."""
        config = self.config
        flows = plan_flows(
            sorted(self.nodes),
            flows=config.flows,
            seed=config.seed,
            warmup=config.warmup,
            duration=config.duration,
            drain=config.drain,
        )
        for flow in flows:
            _schedule_flow_packets(
                self.clock,
                flow,
                self.nodes[flow.source].originate_data,
                rate=config.rate,
                packet_size=config.packet_size,
            )
        return flows

    async def run_for(self, protocol_seconds: float) -> None:
        """Let the network run for a span of protocol time."""
        await asyncio.sleep(protocol_seconds * self.config.time_scale)

    def finish(self) -> Tuple[TrialSummary, LiveCounters]:
        """Close every router and roll up the trial statistics."""
        counters = LiveCounters()
        for node in self.nodes.values():
            node.close()
            node.protocol.finalize()
            self.stats.record_sequence_number(
                node.node_id, node.protocol.sequence_number_metric()
            )
            self.stats.record_mac_drops(node.node_id, 0)
            counters.merge(node.counters)
        return self.stats.summary(), counters

    def routing_tables(self) -> Dict[int, Dict[NodeId, NodeId]]:
        """Each router's current routing table (parity-test hook)."""
        return {
            node_id: dict(getattr(node.protocol, "routing_table", {}))
            for node_id, node in self.nodes.items()
        }


async def _loopback_soak(config: LiveRunConfig) -> LiveRunReport:
    network = LoopbackNetwork(config)
    network.start()
    flows = network.schedule_traffic()
    await network.run_for(config.duration)
    summary, counters = network.finish()
    return LiveRunReport(
        config=config, summary=summary, counters=counters, flows=flows
    )


# ---------------------------------------------------------------------------
# UDP soak (one OS process per router)


def _udp_router_main(node_id: int, config_dict: Dict[str, Any], conn) -> None:
    """Entry point of one router process (multiprocessing target).

    Handshake: bind UDP port -> send it to the launcher -> receive the full
    address book and the shared wall epoch -> run the router until the
    configured duration -> send the local statistics back.
    """
    config = LiveRunConfig.from_dict(config_dict)
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind((config.host, 0))
        sock.setblocking(False)
        conn.send(("port", node_id, sock.getsockname()[1]))
        handshake = conn.recv()
        payload = asyncio.run(
            _udp_router_async(
                node_id, config, sock, handshake["book"], handshake["epoch"]
            )
        )
        conn.send(("stats", node_id, payload))
    finally:
        sock.close()
        conn.close()


async def _udp_router_async(
    node_id: int,
    config: LiveRunConfig,
    sock: socket.socket,
    book: Dict[int, Tuple[str, int]],
    epoch: float,
) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    clock = LiveClock.from_wall_epoch(loop, epoch, time_scale=config.time_scale)
    positions = topology_positions(
        config.topology,
        config.routers,
        seed=config.seed,
        spacing=config.spacing,
        radio_range=config.radio_range,
    )
    adjacency = adjacency_from_positions(positions, config.radio_range)
    stats = TrialStats()
    transport = UdpTransport(node_id, adjacency, book)
    node = LiveNode(
        node_id,
        clock,
        transport,
        stats,
        rng_streams=RngStreams(config.seed),
        max_ttl=config.max_ttl,
        dedup_window=config.dedup_window,
    )
    node.attach_protocol(
        protocol_factory(config.protocol, config.protocol_config)(node_id)
    )
    await transport.open(node, sock)
    # Align every router's protocol start to the shared epoch (t = 0).
    clock.schedule_at(0.0, node.start)
    # Every process derives the identical flow plan; this one originates
    # only the flows whose source it is.
    for flow in plan_flows(
        sorted(positions),
        flows=config.flows,
        seed=config.seed,
        warmup=config.warmup,
        duration=config.duration,
        drain=config.drain,
    ):
        if flow.source == node_id:
            _schedule_flow_packets(
                clock,
                flow,
                node.originate_data,
                rate=config.rate,
                packet_size=config.packet_size,
            )
    remaining = config.duration - clock.now
    if remaining > 0:
        await asyncio.sleep(remaining * config.time_scale)
    node.close()
    node.protocol.finalize()
    transport.close()
    return {
        "data_sent": stats.data_sent,
        "data_delivered": stats.data_delivered,
        "duplicate_deliveries": stats.duplicate_deliveries,
        "control_transmissions": stats.control_transmissions,
        "latencies": list(stats.latencies),
        "sequence_number": node.protocol.sequence_number_metric(),
        "counters": node.counters.to_dict(),
    }


def _udp_soak(config: LiveRunConfig) -> LiveRunReport:
    """Launch one process per router, run the soak, merge their statistics."""
    import multiprocessing

    ctx = multiprocessing.get_context()
    routers = []
    try:
        for node_id in range(config.routers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_udp_router_main,
                args=(node_id, config.to_dict(), child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            routers.append((node_id, process, parent_conn))

        book: Dict[int, Tuple[str, int]] = {}
        for node_id, _, conn in routers:
            if not conn.poll(30.0):
                raise RuntimeError(f"router {node_id} never reported its port")
            tag, reported_id, port = conn.recv()
            if tag != "port":  # pragma: no cover - protocol error
                raise RuntimeError(f"router {node_id}: unexpected {tag!r}")
            book[reported_id] = (config.host, port)

        # Give every process time to receive the book before t = 0.
        epoch = time.time() + 0.5
        for _, _, conn in routers:
            conn.send({"book": book, "epoch": epoch})

        wall_budget = 0.5 + config.duration * config.time_scale + 30.0
        deadline = time.time() + wall_budget
        stats = TrialStats()
        counters = LiveCounters()
        for node_id, _, conn in routers:
            timeout = max(deadline - time.time(), 0.1)
            if not conn.poll(timeout):
                raise RuntimeError(
                    f"router {node_id} did not report statistics within "
                    f"{wall_budget:.0f}s"
                )
            tag, reported_id, payload = conn.recv()
            if tag != "stats":  # pragma: no cover - protocol error
                raise RuntimeError(f"router {node_id}: unexpected {tag!r}")
            stats.data_sent += payload["data_sent"]
            stats.data_delivered += payload["data_delivered"]
            stats.duplicate_deliveries += payload["duplicate_deliveries"]
            stats.control_transmissions += payload["control_transmissions"]
            stats.latencies.extend(payload["latencies"])
            stats.record_sequence_number(reported_id, payload["sequence_number"])
            stats.record_mac_drops(reported_id, 0)
            counters.merge(LiveCounters.from_dict(payload["counters"]))

        for _, process, _ in routers:
            process.join(timeout=10.0)
    finally:
        for _, process, conn in routers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            conn.close()

    flows = plan_flows(
        list(range(config.routers)),
        flows=config.flows,
        seed=config.seed,
        warmup=config.warmup,
        duration=config.duration,
        drain=config.drain,
    )
    return LiveRunReport(
        config=config, summary=stats.summary(), counters=counters, flows=flows
    )


def run_soak(config: LiveRunConfig) -> LiveRunReport:
    """Run one live soak (loopback in-process, or one UDP process per router)."""
    if config.transport == "loopback":
        return asyncio.run(_loopback_soak(config))
    return _udp_soak(config)
